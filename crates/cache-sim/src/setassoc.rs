//! Set-associative LRU cache.
//!
//! The paper's model deliberately ignores conflict misses; Sec. 10 observes
//! that for a few operators (Yolo9, Yolo18) conflict misses in the real
//! set-associative caches cause the model-best configuration to underperform,
//! which motivates the MOpt-5 variant. This cache lets the reproduction
//! exhibit the same effect: the same trace can be replayed against the
//! fully-associative idealization and a realistic set-associative geometry.

use crate::lru::LruStats;

/// A set-associative LRU cache over abstract element addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line_elems: usize,
    ways: usize,
    num_sets: usize,
    /// `sets[s]` holds up to `ways` (line, dirty) entries, most recent first.
    sets: Vec<Vec<(usize, bool)>>,
    stats: LruStats,
}

impl SetAssocCache {
    /// Create a cache with `capacity_elems` elements, lines of `line_elems`
    /// elements and `ways`-way associativity. The number of sets is derived
    /// and rounded down to at least 1.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(capacity_elems: usize, line_elems: usize, ways: usize) -> Self {
        assert!(
            capacity_elems > 0 && line_elems > 0 && ways > 0,
            "cache geometry must be positive"
        );
        let lines = (capacity_elems / line_elems).max(ways);
        let num_sets = (lines / ways).max(1);
        SetAssocCache {
            line_elems,
            ways,
            num_sets,
            sets: vec![Vec::with_capacity(ways); num_sets],
            stats: LruStats::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity (ways per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in elements.
    pub fn line_elems(&self) -> usize {
        self.line_elems
    }

    /// Access statistics.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Reset statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = LruStats::default();
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: usize) -> bool {
        let line = addr / self.line_elems;
        let set = line % self.num_sets;
        self.sets[set].iter().any(|&(l, _)| l == line)
    }

    /// Access element address `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: usize, is_write: bool) -> bool {
        let line = addr / self.line_elems;
        let set_idx = line % self.num_sets;
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            self.stats.hits += 1;
            let (l, dirty) = set.remove(pos);
            set.insert(0, (l, dirty || is_write));
            true
        } else {
            self.stats.misses += 1;
            if set.len() >= self.ways {
                if let Some((_, dirty)) = set.pop() {
                    if dirty {
                        self.stats.writebacks += 1;
                    }
                }
            }
            set.insert(0, (line, is_write));
            false
        }
    }

    /// Invalidate all contents, counting dirty lines as write-backs.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for &(_, dirty) in set.iter() {
                if dirty {
                    self.stats.writebacks += 1;
                }
            }
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivation() {
        let c = SetAssocCache::new(1024, 16, 4);
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn hits_within_a_set() {
        let mut c = SetAssocCache::new(64, 1, 2); // 32 sets, 2 ways
        assert!(!c.access(5, false));
        assert!(c.access(5, false));
        assert!(c.contains(5));
    }

    #[test]
    fn conflict_misses_despite_spare_capacity() {
        // 4 sets x 1 way: addresses 0, 4, 8 all map to set 0 and thrash,
        // even though the cache could hold 4 lines in total.
        let mut c = SetAssocCache::new(4, 1, 1);
        assert_eq!(c.num_sets(), 4);
        c.access(0, false);
        c.access(4, false);
        assert!(!c.access(0, false), "conflict miss expected");
        // A fully associative cache of the same capacity would have hit.
        let mut fa = crate::lru::FullyAssocLru::new(4, 1);
        fa.access(0, false);
        fa.access(4, false);
        assert!(fa.access(0, false));
    }

    #[test]
    fn lru_within_set_and_writebacks() {
        let mut c = SetAssocCache::new(2, 1, 2); // 1 set, 2 ways
        c.access(1, true);
        c.access(2, false);
        c.access(1, false); // refresh 1, so 2 is LRU
        c.access(3, false); // evict 2 (clean)
        assert_eq!(c.stats().writebacks, 0);
        c.access(4, false); // evict 1 (dirty)
        assert_eq!(c.stats().writebacks, 1);
        assert!(!c.contains(1));
    }

    #[test]
    fn flush_writes_back_dirty_lines() {
        let mut c = SetAssocCache::new(8, 1, 2);
        c.access(0, true);
        c.access(1, true);
        c.access(2, false);
        c.flush();
        assert_eq!(c.stats().writebacks, 2);
        assert!(!c.contains(0));
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn zero_ways_panics() {
        let _ = SetAssocCache::new(64, 1, 0);
    }
}
