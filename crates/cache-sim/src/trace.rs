//! Element-granularity trace simulation of a multi-level tiled conv2d.
//!
//! The trace simulator drives a [`MemoryHierarchy`] with the sequence of
//! element accesses that the generated tiled code would perform, one register
//! tile at a time: within a register tile the output accumulators live in
//! registers (loaded once, stored once) while the distinct input and kernel
//! elements needed by the tile are streamed from the cache hierarchy. This is
//! exactly the behaviour of the paper's microkernel-based code (Sec. 6) and
//! produces the hardware-counter-like measurements used for model validation
//! (Sec. 9): register load/stores and L1/L2/L3 miss traffic.
//!
//! Element-level simulation costs time proportional to the data volume
//! touched, so it is intended for the scaled-down operators used in tests and
//! the validation experiments; full-size operators use the tile-granularity
//! simulator in [`crate::tilesim`].

use conv_spec::{layout::AddressMap, ConvShape, LoopIndex, TileConfig, TilingLevel};

use crate::counters::DataMovement;
use crate::hierarchy::{CacheKind, MemoryHierarchy};
use crate::tilesim::{TileRegion, TileWalker};

/// Element-granularity simulator for one conv2d operator.
pub struct TraceSimulator {
    hierarchy: MemoryHierarchy,
    addresses: AddressMap,
    shape: ConvShape,
}

impl TraceSimulator {
    /// Create a simulator for a shape on a machine, choosing the cache
    /// organization (idealized fully-associative vs set-associative).
    pub fn new(shape: &ConvShape, machine: &conv_spec::MachineModel, kind: CacheKind) -> Self {
        TraceSimulator {
            hierarchy: MemoryHierarchy::new(machine, kind),
            addresses: AddressMap::new(shape),
            shape: *shape,
        }
    }

    /// Simulate the complete tiled execution described by `config` and return
    /// the per-level data movement.
    ///
    /// Register-level traffic is the number of elements moved between L1 and
    /// the register file: the distinct input and kernel elements of every
    /// register tile (loads) and the output elements of every register tile
    /// (one load and one store each).
    pub fn run(&mut self, config: &TileConfig) -> DataMovement {
        let config = config.normalized(&self.shape);
        let walker = TileWalker::new(&self.shape, &config);
        let shape = self.shape;
        // Collect regions first to avoid borrowing `self` inside the closure.
        let mut regions: Vec<TileRegion> = Vec::new();
        walker.walk(TilingLevel::Register, |r| {
            regions.push(*r);
            true
        });
        // Scratch buffers for the per-tile input row/column sets, reused
        // across the (potentially millions of) register tiles.
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for region in &regions {
            self.simulate_register_tile(region, &shape, &mut rows, &mut cols);
        }
        self.hierarchy.data_movement(self.shape.flops() as f64)
    }

    fn simulate_register_tile(
        &mut self,
        region: &TileRegion,
        shape: &ConvShape,
        rows: &mut Vec<usize>,
        cols: &mut Vec<usize>,
    ) {
        let n0 = region.start_of(LoopIndex::N);
        let nn = region.size_of(LoopIndex::N);
        let k0 = region.start_of(LoopIndex::K);
        let nk = region.size_of(LoopIndex::K);
        let c0 = region.start_of(LoopIndex::C);
        let nc = region.size_of(LoopIndex::C);
        let r0 = region.start_of(LoopIndex::R);
        let nr = region.size_of(LoopIndex::R);
        let s0 = region.start_of(LoopIndex::S);
        let ns = region.size_of(LoopIndex::S);
        let h0 = region.start_of(LoopIndex::H);
        let nh = region.size_of(LoopIndex::H);
        let w0 = region.start_of(LoopIndex::W);
        let nw = region.size_of(LoopIndex::W);

        let mut reg_loads = 0u64;
        let mut reg_stores = 0u64;

        // Output accumulators: loaded into registers at tile entry.
        for n in n0..n0 + nn {
            for k in k0..k0 + nk {
                for h in h0..h0 + nh {
                    for w in w0..w0 + nw {
                        let addr = self.addresses.output(n, k, h, w);
                        self.hierarchy.access(addr, false);
                        reg_loads += 1;
                    }
                }
            }
        }
        // Distinct kernel elements streamed through registers.
        for k in k0..k0 + nk {
            for c in c0..c0 + nc {
                for r in r0..r0 + nr {
                    for s in s0..s0 + ns {
                        let addr = self.addresses.kernel(k, c, r, s);
                        self.hierarchy.access(addr, false);
                        reg_loads += 1;
                    }
                }
            }
        }
        // Distinct input elements streamed through registers: for each
        // channel group the tile's K range reaches, the group's channel band
        // restricted to the tile's relative C range, over the exact set of
        // (dilated) input rows and columns the tile touches.
        fill_distinct_input_positions(rows, h0, nh, shape.stride, r0, nr, shape.dilation);
        fill_distinct_input_positions(cols, w0, nw, shape.stride, s0, ns, shape.dilation);
        let cpg = shape.reduction_c();
        for n in n0..n0 + nn {
            for g in shape.groups_spanned(k0, nk) {
                for c in c0..c0 + nc {
                    let c_abs = g * cpg + c;
                    for &hi in rows.iter() {
                        for &wi in cols.iter() {
                            let addr = self.addresses.input(n, c_abs, hi, wi);
                            self.hierarchy.access(addr, false);
                            reg_loads += 1;
                        }
                    }
                }
            }
        }
        // Output accumulators written back at tile exit.
        for n in n0..n0 + nn {
            for k in k0..k0 + nk {
                for h in h0..h0 + nh {
                    for w in w0..w0 + nw {
                        let addr = self.addresses.output(n, k, h, w);
                        self.hierarchy.access(addr, true);
                        reg_stores += 1;
                    }
                }
            }
        }
        self.hierarchy.add_register_traffic(reg_loads, reg_stores);
    }

    /// Access the underlying hierarchy (e.g. to read raw per-level hit/miss
    /// statistics after [`run`](Self::run)).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }
}

/// Fill `buf` with the sorted distinct input positions `{p·stride +
/// t·dilation}` touched by a tile with output positions `p ∈ [p0, p0+np)`
/// and kernel taps `t ∈ [t0, t0+nt)` along one spatial axis. For
/// `dilation == 1` this is the contiguous pre-generalization range
/// `[p0·stride + t0, … + (np-1)·stride + nt)`; for larger dilations the
/// touched rows can be non-contiguous, so the exact union is materialized
/// (sort + dedup in the caller-provided scratch buffer — no per-tile
/// allocation once the buffer has grown).
fn fill_distinct_input_positions(
    buf: &mut Vec<usize>,
    p0: usize,
    np: usize,
    stride: usize,
    t0: usize,
    nt: usize,
    dilation: usize,
) {
    buf.clear();
    if dilation == 1 {
        let start = p0 * stride + t0;
        let len = (np - 1) * stride + nt;
        buf.extend(start..start + len);
        return;
    }
    for p in p0..p0 + np {
        for t in t0..t0 + nt {
            buf.push(p * stride + t * dilation);
        }
    }
    buf.sort_unstable();
    buf.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::{MachineModel, Permutation, TileSizes};

    fn shape() -> ConvShape {
        ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap()
    }

    fn config(
        shape: &ConvShape,
        reg: [usize; 7],
        l1: [usize; 7],
        l2: [usize; 7],
        perm: &str,
    ) -> TileConfig {
        TileConfig::new(
            Permutation::parse(perm).unwrap(),
            [
                TileSizes::from_array(reg),
                TileSizes::from_array(l1),
                TileSizes::from_array(l2),
                TileSizes::full(shape),
            ],
            TileSizes::ones(),
        )
        .normalized(shape)
    }

    #[test]
    fn untiled_run_touches_each_element_at_least_once() {
        let s = shape();
        let m = MachineModel::tiny_test_machine();
        let cfg = TileConfig::untiled(&s);
        let mut sim = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative);
        let dm = sim.run(&cfg);
        // L3 inbound >= cold footprint of all three tensors.
        let cold = (s.input_elems() + s.kernel_elems() + s.output_elems()) as f64;
        assert!(dm.volume(TilingLevel::L3) >= cold * 0.99);
        assert_eq!(dm.flops, s.flops() as f64);
    }

    #[test]
    fn register_traffic_counts_loads_and_stores() {
        let s = ConvShape::new(1, 2, 2, 1, 1, 2, 2, 1).unwrap();
        let m = MachineModel::tiny_test_machine();
        // Register tile = whole problem: Out loaded+stored once, In/Ker once.
        let cfg = TileConfig::untiled(&s);
        let mut sim = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative);
        let dm = sim.run(&cfg);
        let reg = dm.level(TilingLevel::Register);
        assert_eq!(
            reg.inbound_elems,
            (s.output_elems() + s.kernel_elems() + s.input_elems()) as f64
        );
        assert_eq!(reg.outbound_elems, s.output_elems() as f64);
    }

    #[test]
    fn smaller_register_tiles_increase_register_traffic() {
        let s = shape();
        let m = MachineModel::tiny_test_machine();
        let big = config(
            &s,
            [1, 8, 4, 3, 3, 8, 8],
            [1, 8, 4, 3, 3, 8, 8],
            [1, 8, 4, 3, 3, 8, 8],
            "nkcrshw",
        );
        let small = config(
            &s,
            [1, 2, 1, 1, 1, 2, 2],
            [1, 8, 4, 3, 3, 8, 8],
            [1, 8, 4, 3, 3, 8, 8],
            "nkcrshw",
        );
        let dm_big = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative).run(&big);
        let dm_small = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative).run(&small);
        assert!(
            dm_small.volume(TilingLevel::Register) > dm_big.volume(TilingLevel::Register),
            "small tiles should move more data through registers"
        );
    }

    #[test]
    fn good_l1_tiling_reduces_l1_traffic_vs_bad_tiling() {
        // With the same register tile, an execution whose L1 tile fits the
        // (tiny, 256-element) L1 cache should produce less L2→L1 traffic than
        // one with no L1/L2 blocking, whose working set thrashes L1.
        let s = ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap();
        let m = MachineModel::tiny_test_machine();
        let reg = [1, 4, 1, 1, 1, 1, 4];
        let good = config(&s, reg, [1, 4, 2, 3, 3, 2, 4], [1, 8, 8, 3, 3, 6, 6], "kcrsnhw");
        let bad = config(&s, reg, s.extents(), s.extents(), "kcrsnhw");
        let dm_good = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative).run(&good);
        let dm_bad = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative).run(&bad);
        assert!(
            dm_good.volume(TilingLevel::L1) < dm_bad.volume(TilingLevel::L1),
            "blocked {} vs unblocked {}",
            dm_good.volume(TilingLevel::L1),
            dm_bad.volume(TilingLevel::L1)
        );
    }

    #[test]
    fn set_associative_mode_reports_consistent_traffic() {
        // Conflict misses can move traffic either way relative to the ideal
        // cache for a particular trace; what must hold is that cold traffic at
        // L3 covers every distinct element and all levels report activity.
        let s = ConvShape::new(1, 8, 8, 3, 3, 8, 8, 1).unwrap();
        let m = MachineModel::tiny_test_machine();
        let cfg = config(
            &s,
            [1, 4, 1, 1, 1, 2, 2],
            [1, 8, 4, 3, 3, 4, 4],
            [1, 8, 8, 3, 3, 8, 8],
            "kcrsnhw",
        );
        let real = TraceSimulator::new(&s, &m, CacheKind::SetAssociative).run(&cfg);
        let cold = (s.input_elems() + s.kernel_elems() + s.output_elems()) as f64;
        assert!(real.volume(TilingLevel::L3) >= cold * 0.99);
        for lvl in [TilingLevel::Register, TilingLevel::L1, TilingLevel::L2, TilingLevel::L3] {
            assert!(real.volume(lvl) > 0.0, "no traffic recorded at {lvl}");
        }
    }

    #[test]
    fn distinct_positions_match_dense_range_and_dilated_union() {
        let positions = |p0, np, stride, t0, nt, dil| {
            let mut buf = Vec::new();
            fill_distinct_input_positions(&mut buf, p0, np, stride, t0, nt, dil);
            buf
        };
        // Dense: contiguous range.
        assert_eq!(positions(1, 3, 1, 0, 3, 1), vec![1, 2, 3, 4, 5]);
        // Dilation 2, single output position: every other pixel.
        assert_eq!(positions(0, 1, 1, 0, 3, 2), vec![0, 2, 4]);
        // Dilation 2 with two adjacent outputs: union fills in the gaps.
        assert_eq!(positions(0, 2, 1, 0, 3, 2), vec![0, 1, 2, 3, 4, 5]);
        // Stride 2 + dilation 2: only even pixels.
        assert_eq!(positions(0, 2, 2, 0, 2, 2), vec![0, 2, 4]);
    }

    #[test]
    fn depthwise_register_traffic_counts_each_group_band_once() {
        let s = ConvShape::depthwise(4, 4, 1, 1);
        let m = MachineModel::tiny_test_machine();
        let cfg = TileConfig::untiled(&s);
        let mut sim = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative);
        let dm = sim.run(&cfg);
        let reg = dm.level(TilingLevel::Register);
        // Whole problem in one register tile: In + Ker + Out loads, Out store.
        assert_eq!(
            reg.inbound_elems,
            (s.output_elems() + s.kernel_elems() + s.input_elems()) as f64
        );
        assert_eq!(reg.outbound_elems, s.output_elems() as f64);
    }

    #[test]
    fn dilated_trace_covers_cold_footprint() {
        let s = ConvShape::from_table1_dilated(4, 3, 12, 3, 1, 2);
        let m = MachineModel::tiny_test_machine();
        let cfg = TileConfig::untiled(&s);
        let mut sim = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative);
        let dm = sim.run(&cfg);
        // Every kernel and output element is touched; the dilated input
        // window touches every input pixel of the full (untiled) problem.
        let cold = (s.input_elems() + s.kernel_elems() + s.output_elems()) as f64;
        assert!(dm.volume(TilingLevel::L3) >= cold * 0.99);
    }

    #[test]
    fn trace_and_tile_simulators_agree_on_l3_traffic() {
        // For a single-level tiling, the L3 (memory↔L3) traffic measured by
        // the exact LRU simulation should be close to the tile-granularity
        // estimate (they share the cold traffic; the tile estimate uses
        // adjacent-tile reuse only, so it is an upper bound).
        let s = ConvShape::new(1, 8, 8, 3, 3, 10, 10, 1).unwrap();
        let m = MachineModel::tiny_test_machine();
        let cfg = config(
            &s,
            [1, 4, 2, 1, 1, 2, 2],
            [1, 4, 4, 3, 3, 4, 4],
            [1, 8, 8, 3, 3, 6, 10],
            "kcrsnhw",
        );
        let dm_trace = TraceSimulator::new(&s, &m, CacheKind::IdealFullyAssociative).run(&cfg);
        let dm_tile = crate::tilesim::TileTrafficSimulator::default().simulate(&s, &cfg);
        let t = dm_trace.volume(TilingLevel::L3);
        let e = dm_tile.volume(TilingLevel::L3);
        assert!(e + 1.0 >= t * 0.9, "tile estimate {e} should not be far below trace {t}");
    }
}
