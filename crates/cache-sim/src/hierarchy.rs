//! A multi-level cache hierarchy assembled from a machine description.

use conv_spec::{MachineModel, MemoryLevel, TilingLevel};

use crate::counters::DataMovement;
use crate::lru::{FullyAssocLru, LruStats};
use crate::setassoc::SetAssocCache;

/// Which cache organization the simulated hierarchy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// Fully associative LRU with unit line size — the paper's idealized model.
    IdealFullyAssociative,
    /// Fully associative LRU with the machine's real line size.
    FullyAssociativeLines,
    /// Set-associative LRU with the machine's line size and associativity —
    /// exhibits conflict misses.
    SetAssociative,
}

enum LevelCache {
    Full(FullyAssocLru),
    Set(SetAssocCache),
}

impl LevelCache {
    fn access(&mut self, addr: usize, is_write: bool) -> bool {
        match self {
            LevelCache::Full(c) => c.access(addr, is_write),
            LevelCache::Set(c) => c.access(addr, is_write),
        }
    }

    fn stats(&self) -> LruStats {
        match self {
            LevelCache::Full(c) => c.stats(),
            LevelCache::Set(c) => c.stats(),
        }
    }

    fn flush(&mut self) {
        match self {
            LevelCache::Full(c) => c.flush(),
            LevelCache::Set(c) => c.flush(),
        }
    }

    fn line_elems(&self) -> usize {
        match self {
            LevelCache::Full(c) => c.line_elems(),
            LevelCache::Set(c) => c.line_elems(),
        }
    }
}

/// A simulated L1/L2/L3 hierarchy (inclusive, write-back, write-allocate).
///
/// Each access probes L1; a miss probes L2; a further miss probes L3; a miss
/// there goes to DRAM. Register-level traffic is not simulated here — it is
/// accounted for by the trace/tile simulators that drive this hierarchy,
/// because registers are explicitly managed by the microkernel rather than
/// being a cache.
pub struct MemoryHierarchy {
    levels: Vec<(MemoryLevel, LevelCache)>,
    kind: CacheKind,
    /// Register-level traffic accumulated by the driver (loads, stores).
    register_loads: u64,
    register_stores: u64,
}

impl MemoryHierarchy {
    /// Build a hierarchy for a machine using the requested cache organization.
    pub fn new(machine: &MachineModel, kind: CacheKind) -> Self {
        let mut levels = Vec::new();
        for cache in &machine.caches {
            let line = match kind {
                CacheKind::IdealFullyAssociative => 1,
                _ => cache.line_elems.max(1),
            };
            let level_cache = match kind {
                CacheKind::SetAssociative => {
                    let ways = if cache.associativity == 0 {
                        (cache.capacity_elems / line).max(1)
                    } else {
                        cache.associativity
                    };
                    LevelCache::Set(SetAssocCache::new(cache.capacity_elems, line, ways))
                }
                _ => LevelCache::Full(FullyAssocLru::new(cache.capacity_elems, line)),
            };
            levels.push((cache.level, level_cache));
        }
        MemoryHierarchy { levels, kind, register_loads: 0, register_stores: 0 }
    }

    /// The cache organization in use.
    pub fn kind(&self) -> CacheKind {
        self.kind
    }

    /// Perform one element access (load or store), propagating misses down the
    /// hierarchy. Returns the deepest level that *hit* (`None` if the access
    /// went all the way to DRAM).
    pub fn access(&mut self, addr: usize, is_write: bool) -> Option<MemoryLevel> {
        for (lvl, cache) in self.levels.iter_mut() {
            if cache.access(addr, is_write) {
                return Some(*lvl);
            }
        }
        None
    }

    /// Record register-file traffic (loads/stores between L1 and registers)
    /// accounted by the driving simulator.
    pub fn add_register_traffic(&mut self, loads: u64, stores: u64) {
        self.register_loads += loads;
        self.register_stores += stores;
    }

    /// Raw statistics of one cache level.
    pub fn level_stats(&self, level: MemoryLevel) -> Option<LruStats> {
        self.levels.iter().find(|(l, _)| *l == level).map(|(_, c)| c.stats())
    }

    /// Flush all levels (e.g. between repeated benchmark runs).
    pub fn flush(&mut self) {
        for (_, c) in self.levels.iter_mut() {
            c.flush();
        }
    }

    /// Convert the accumulated statistics into a per-level [`DataMovement`]
    /// report. `flops` is the FLOP count of the simulated computation.
    ///
    /// Traffic into a level is its miss count (times line size); traffic out
    /// is its write-back count (times line size). Register traffic comes from
    /// [`add_register_traffic`](Self::add_register_traffic).
    pub fn data_movement(&self, flops: f64) -> DataMovement {
        let mut dm = DataMovement::zero(flops);
        dm.level_mut(TilingLevel::Register).inbound_elems = self.register_loads as f64;
        dm.level_mut(TilingLevel::Register).outbound_elems = self.register_stores as f64;
        for (lvl, cache) in &self.levels {
            let tiling = match lvl {
                MemoryLevel::L1 => TilingLevel::L1,
                MemoryLevel::L2 => TilingLevel::L2,
                MemoryLevel::L3 => TilingLevel::L3,
                _ => continue,
            };
            let stats = cache.stats();
            let line = cache.line_elems() as f64;
            dm.level_mut(tiling).inbound_elems = stats.misses as f64 * line;
            dm.level_mut(tiling).outbound_elems = stats.writebacks as f64 * line;
        }
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineModel {
        MachineModel::tiny_test_machine()
    }

    #[test]
    fn miss_propagates_and_fills_all_levels() {
        let mut h = MemoryHierarchy::new(&machine(), CacheKind::IdealFullyAssociative);
        assert_eq!(h.access(42, false), None); // cold: misses everywhere
        assert_eq!(h.access(42, false), Some(MemoryLevel::L1)); // now in L1
        let l1 = h.level_stats(MemoryLevel::L1).unwrap();
        assert_eq!(l1.misses, 1);
        assert_eq!(l1.hits, 1);
        let l3 = h.level_stats(MemoryLevel::L3).unwrap();
        assert_eq!(l3.accesses, 1); // only probed on the L2 miss
    }

    #[test]
    fn capacity_differences_between_levels_show_up() {
        let m = machine();
        let mut h = MemoryHierarchy::new(&m, CacheKind::IdealFullyAssociative);
        let l1_cap = m.capacity(TilingLevel::L1);
        // Touch more than L1 capacity but less than L2 capacity, twice.
        let n = l1_cap + 64;
        for _ in 0..2 {
            for a in 0..n {
                h.access(a, false);
            }
        }
        let l1 = h.level_stats(MemoryLevel::L1).unwrap();
        let l2 = h.level_stats(MemoryLevel::L2).unwrap();
        // Second pass misses in L1 (working set exceeds it) but hits in L2.
        assert!(l1.misses as usize > n, "L1 should keep missing");
        assert_eq!(l2.misses as usize, n, "L2 holds the working set after pass 1");
    }

    #[test]
    fn data_movement_report_reflects_misses_and_register_traffic() {
        let mut h = MemoryHierarchy::new(&machine(), CacheKind::IdealFullyAssociative);
        for a in 0..10 {
            h.access(a, a % 2 == 0);
        }
        h.add_register_traffic(100, 50);
        let dm = h.data_movement(1000.0);
        assert_eq!(dm.volume(TilingLevel::L1), 10.0);
        assert_eq!(dm.level(TilingLevel::Register).inbound_elems, 100.0);
        assert_eq!(dm.level(TilingLevel::Register).outbound_elems, 50.0);
        assert_eq!(dm.flops, 1000.0);
    }

    #[test]
    fn set_associative_mode_can_have_more_misses_than_ideal() {
        let m = machine();
        let mut ideal = MemoryHierarchy::new(&m, CacheKind::IdealFullyAssociative);
        let mut setassoc = MemoryHierarchy::new(&m, CacheKind::SetAssociative);
        // A strided pattern that maps to few sets.
        let stride = 64;
        for rep in 0..4 {
            let _ = rep;
            for i in 0..32 {
                ideal.access(i * stride, false);
                setassoc.access(i * stride, false);
            }
        }
        let mi = ideal.level_stats(MemoryLevel::L1).unwrap().misses;
        let ms = setassoc.level_stats(MemoryLevel::L1).unwrap().misses;
        assert!(ms >= mi, "set-associative should not outperform ideal LRU here");
    }

    #[test]
    fn flush_clears_residency() {
        let mut h = MemoryHierarchy::new(&machine(), CacheKind::FullyAssociativeLines);
        h.access(0, true);
        assert_eq!(h.access(0, false), Some(MemoryLevel::L1));
        h.flush();
        assert_eq!(h.access(0, false), None);
        assert_eq!(h.kind(), CacheKind::FullyAssociativeLines);
    }
}
