//! Criterion bench: cold vs. warm whole-network batch planning over the 32
//! Table-1 operators (Yolo-9000 + ResNet-18 + MobileNet).
//!
//! The cold path pays one analytical solve per unique shape; the warm path
//! is pure schedule-cache lookups. The ratio between the two is the
//! serving-layer speedup the `mopt-service` subsystem exists for (the
//! acceptance bar is ≥10x; in release builds the observed gap is several
//! orders of magnitude).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use conv_spec::MachineModel;
use mopt_core::OptimizerOptions;
use mopt_service::{NetworkPlanner, ScheduleCache};

fn fast_options() -> OptimizerOptions {
    OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }
}

fn bench_cold_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(32));
    group.bench_function("plan_table1_cold", |b| {
        b.iter(|| {
            // A fresh cache every iteration keeps each plan fully cold.
            let cache = ScheduleCache::new(256);
            let planner = NetworkPlanner::new(&cache, MachineModel::i7_9700k(), fast_options());
            planner.plan_table1().stats.solves
        })
    });
    group.finish();
}

fn bench_warm_planning(c: &mut Criterion) {
    let cache = ScheduleCache::new(256);
    let planner = NetworkPlanner::new(&cache, MachineModel::i7_9700k(), fast_options());
    let cold = planner.plan_table1(); // populate
    assert_eq!(cold.stats.solves, cold.stats.unique_shapes);

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(32));
    group.bench_function("plan_table1_warm", |b| {
        b.iter(|| {
            let plan = planner.plan_table1();
            assert_eq!(plan.stats.solves, 0);
            plan.stats.cache_hits
        })
    });
    group.finish();
}

fn bench_single_lookup(c: &mut Criterion) {
    let cache = ScheduleCache::new(256);
    let machine = MachineModel::i7_9700k();
    let planner = NetworkPlanner::new(&cache, machine.clone(), fast_options());
    planner.plan_table1();
    let key = mopt_service::CacheKey::new(
        conv_spec::benchmarks::all_operators()[0].shape,
        &machine,
        &fast_options(),
    );
    c.bench_function("service/cache_hit_lookup", |b| b.iter(|| cache.get(&key).is_some()));
}

/// Warm planning over the generalized suites (MobileNetV2 depthwise +
/// dilated DeepLab): the new shape fields flow through the same cache keys.
fn bench_warm_generalized_planning(c: &mut Criterion) {
    let cache = ScheduleCache::new(256);
    let planner = NetworkPlanner::new(&cache, MachineModel::i7_9700k(), fast_options());
    let ops: Vec<_> = conv_spec::benchmarks::extended_operators()
        .into_iter()
        .filter(|op| {
            matches!(
                op.suite,
                conv_spec::BenchmarkSuite::MobileNetV2 | conv_spec::BenchmarkSuite::DilatedDeepLab
            )
        })
        .collect();
    let cold = planner.plan_ops(&ops); // populate
    assert_eq!(cold.stats.solves, cold.stats.unique_shapes);

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.bench_function("plan_generalized_warm", |b| {
        b.iter(|| {
            let plan = planner.plan_ops(&ops);
            assert_eq!(plan.stats.solves, 0);
            plan.stats.cache_hits
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_planning,
    bench_warm_planning,
    bench_single_lookup,
    bench_warm_generalized_planning
);
criterion_main!(benches);
