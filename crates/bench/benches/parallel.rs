//! Criterion bench: multicore planning and parallel execution.
//!
//! Execution: `ParTiledConv` at 1/2/4/8 threads against the sequential
//! `TiledConv` walk (on a multi-core host the speedup tracks
//! `min(threads, cores)`; on one core the bench measures the partitioning
//! overhead, which must stay small). Planning: a multicore solve — which
//! searches both parallel axes — against the sequential solve of the same
//! operator, plus the parallel fused depthwise → pointwise executor.

use conv_exec::{pointwise_consumer, FusedDwPw, ParTiledConv, Tensor4, TiledConv};
use conv_spec::{ConvShape, MachineModel};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mopt_core::{MOptOptimizer, OptimizerOptions};

fn shape() -> ConvShape {
    // Extents divisible by 8 so every thread count slices evenly.
    ConvShape::new(1, 32, 16, 3, 3, 24, 24, 1).unwrap()
}

fn bench_parallel_execution(c: &mut Criterion) {
    let shape = shape();
    let machine = MachineModel::i7_9700k();
    let options = OptimizerOptions { max_classes: 1, multistart: 0, ..Default::default() };
    let config = MOptOptimizer::new(shape, machine, options).optimize().best().config.clone();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 5);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 6);

    let mut group = c.benchmark_group("parallel_exec");
    group.throughput(Throughput::Elements(shape.flops() as u64));
    group.sample_size(10);
    let sequential = TiledConv::new(shape, config.clone(), 1).unwrap();
    group.bench_function("tiled_sequential", |b| b.iter(|| sequential.run(&input, &kernel)));
    for threads in [2usize, 4, 8] {
        let par = ParTiledConv::new(shape, config.clone(), threads).unwrap();
        group.bench_function(&format!("par_tiled_{threads}t"), |b| {
            b.iter(|| par.run(&input, &kernel))
        });
    }
    group.finish();
}

fn bench_parallel_fused(c: &mut Criterion) {
    let dw = ConvShape::depthwise(32, 26, 3, 1);
    let pw = pointwise_consumer(&dw, 16);
    let fused = FusedDwPw::new(dw, pw).unwrap().with_relu_intermediate(true);
    let (ni, ci, hi, wi) = dw.input_dims();
    let input = Tensor4::random(ni, ci, hi, wi, 7);
    let (dk, dc, dr, ds) = dw.kernel_dims();
    let dwk = Tensor4::random(dk, dc, dr, ds, 8);
    let (pk, pc, pr, ps) = pw.kernel_dims();
    let pwk = Tensor4::random(pk, pc, pr, ps, 9);

    let mut group = c.benchmark_group("parallel_fused_dw_pw");
    group.throughput(Throughput::Elements((dw.flops() + pw.flops()) as u64));
    group.sample_size(10);
    group.bench_function("sequential_bands", |b| b.iter(|| fused.run(&input, &dwk, &pwk)));
    for threads in [2usize, 4] {
        group.bench_function(&format!("parallel_bands_{threads}t"), |b| {
            b.iter(|| fused.run_parallel(&input, &dwk, &pwk, threads))
        });
    }
    group.finish();
}

fn bench_multicore_planning(c: &mut Criterion) {
    let shape = shape();
    let machine = MachineModel::i7_9700k();
    let mut group = c.benchmark_group("multicore_plan");
    group.sample_size(10);
    for threads in [1usize, 8] {
        let options =
            OptimizerOptions { threads, max_classes: 1, multistart: 0, ..Default::default() };
        let machine = machine.clone();
        group.bench_function(&format!("solve_{threads}t"), |b| {
            b.iter(|| MOptOptimizer::new(shape, machine.clone(), options.clone()).optimize())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_execution, bench_parallel_fused, bench_multicore_planning);
criterion_main!(benches);
