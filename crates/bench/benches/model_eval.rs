//! Criterion bench: cost of evaluating the analytical model.
//!
//! The paper's key practicality claim is that the analytical model is cheap
//! enough to explore the full design space; these benches measure the cost of
//! a single-level cost evaluation and of a full multi-level prediction.

use conv_spec::{benchmarks, MachineModel, Permutation, TileConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use mopt_model::cost::{single_level_volume, CostOptions, RealTiles};
use mopt_model::multilevel::MultiLevelModel;
use mopt_model::prune::pruned_classes;

fn bench_single_level(c: &mut Criterion) {
    let op = benchmarks::by_name("R9").expect("R9 exists");
    let perm = Permutation::parse("kcrsnhw").unwrap();
    let tiles = RealTiles::from_array([1.0, 32.0, 16.0, 3.0, 3.0, 7.0, 14.0]);
    let opts = CostOptions::default();
    c.bench_function("model/single_level_volume", |b| {
        b.iter(|| {
            std::hint::black_box(single_level_volume(&op.shape, &perm, &tiles, &opts).total())
        })
    });
}

fn bench_multilevel_predict(c: &mut Criterion) {
    let op = benchmarks::by_name("R9").expect("R9 exists");
    let machine = MachineModel::i7_9700k();
    let model = MultiLevelModel::new(op.shape, machine, Permutation::parse("kcrsnhw").unwrap());
    let config = TileConfig::untiled(&op.shape);
    c.bench_function("model/multilevel_predict", |b| {
        b.iter(|| std::hint::black_box(model.predict_config(&config).bottleneck_cost))
    });
}

fn bench_all_pruned_classes(c: &mut Criterion) {
    // Evaluating all 8 class representatives at one tile point — the unit of
    // work the comprehensive exploration repeats.
    let op = benchmarks::by_name("Y5").expect("Y5 exists");
    let tiles = RealTiles::from_array([1.0, 64.0, 32.0, 1.0, 1.0, 17.0, 17.0]);
    let opts = CostOptions::default();
    let classes = pruned_classes();
    c.bench_function("model/eight_pruned_classes", |b| {
        b.iter(|| {
            classes
                .iter()
                .map(|cl| single_level_volume(&op.shape, &cl.representative, &tiles, &opts).total())
                .fold(f64::INFINITY, f64::min)
        })
    });
}

criterion_group!(benches, bench_single_level, bench_multilevel_predict, bench_all_pruned_classes);
criterion_main!(benches);
