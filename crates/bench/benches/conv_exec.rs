//! Criterion bench: end-to-end conv2d execution — naive vs im2col+GEMM vs
//! multi-level tiled with a heuristic configuration vs the oneDNN-like
//! baseline (the per-operator GFLOPS that Figures 7/8 are built from, on one
//! scaled operator).

use baselines::OneDnnLike;
use conv_exec::im2col::{conv2d_im2col, GemmBlocking};
use conv_exec::naive::conv2d_naive;
use conv_exec::{Tensor4, TiledConv};
use conv_spec::{ConvShape, MachineModel};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mopt_core::optimizer::heuristic_config;

fn shape() -> ConvShape {
    // A scaled-down ResNet-style layer so the bench finishes quickly.
    ConvShape::new(1, 32, 32, 3, 3, 28, 28, 1).unwrap()
}

fn bench_conv_variants(c: &mut Criterion) {
    let shape = shape();
    let machine = MachineModel::i7_9700k();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 5);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 6);
    let flops = shape.flops() as u64;

    let mut group = c.benchmark_group("conv2d");
    group.throughput(Throughput::Elements(flops));
    group.sample_size(10);

    group.bench_function("naive", |b| b.iter(|| conv2d_naive(&shape, &input, &kernel)));
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 1))
    });
    let tiled = TiledConv::new(shape, heuristic_config(&shape, &machine), 1).unwrap();
    group.bench_function("tiled_heuristic_1t", |b| b.iter(|| tiled.run(&input, &kernel)));
    let lib = OneDnnLike::new(machine.clone());
    group.bench_function("onednn_like", |b| b.iter(|| lib.run(&shape, &input, &kernel)));
    group.finish();
}

/// Generalized workloads: a MobileNet(V2)-style depthwise stage and a
/// DeepLab-style dilated operator through the same three execution paths.
fn bench_generalized_conv(c: &mut Criterion) {
    let machine = MachineModel::i7_9700k();
    for (label, shape) in [
        ("depthwise", ConvShape::depthwise(64, 30, 3, 1)),
        ("dilated_d2", ConvShape::from_table1_dilated(32, 32, 33, 3, 1, 2)),
    ] {
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 7);
        let kernel = Tensor4::random(kk, kc, kr, ks, 8);

        let group_name = format!("conv2d_{label}");
        let mut group = c.benchmark_group(&group_name);
        group.throughput(Throughput::Elements(shape.flops() as u64));
        group.sample_size(10);
        group.bench_function("naive", |b| b.iter(|| conv2d_naive(&shape, &input, &kernel)));
        group.bench_function("im2col_gemm", |b| {
            b.iter(|| conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 1))
        });
        let tiled = TiledConv::new(shape, heuristic_config(&shape, &machine), 1).unwrap();
        group.bench_function("tiled_heuristic_1t", |b| b.iter(|| tiled.run(&input, &kernel)));
        group.finish();
    }
}

criterion_group!(benches, bench_conv_variants, bench_generalized_conv);
criterion_main!(benches);
