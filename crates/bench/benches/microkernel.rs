//! Criterion bench: the register-tiled microkernel (Sec. 6), in isolation.

use conv_exec::microkernel::{run_microkernel, KernelRegion};
use conv_exec::{PackedKernel, Tensor4};
use conv_spec::ConvShape;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_microkernel(c: &mut Criterion) {
    let shape = ConvShape::new(1, 64, 64, 3, 3, 14, 14, 1).unwrap();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 1);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 2);
    let packed = PackedKernel::pack(&shape, &kernel, 8);
    // A register tile like the paper's 2x(8-lane) x 6-pixel block.
    let region = KernelRegion {
        n: (0, 1),
        k: (0, 16),
        c: (0, shape.c),
        r: (0, shape.r),
        s: (0, shape.s),
        h: (0, 1),
        w: (0, 6),
    };
    let flops = 2 * region.macs() as u64;
    let mut group = c.benchmark_group("microkernel");
    group.throughput(Throughput::Elements(flops));
    group.bench_function("register_tile_16x6", |b| {
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        b.iter(|| run_microkernel(&shape, &input, &packed, &mut out, &region));
    });
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let shape = ConvShape::new(1, 256, 128, 3, 3, 14, 14, 1).unwrap();
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 3);
    c.bench_function("microkernel/kernel_packing", |b| {
        b.iter(|| PackedKernel::pack(&shape, &kernel, 8).as_slice().len())
    });
}

criterion_group!(benches, bench_microkernel, bench_packing);
criterion_main!(benches);
