//! Criterion bench: fusion-aware graph planning and fused vs. unfused
//! depthwise + pointwise execution.
//!
//! Three axes of the `mopt_graph` subsystem:
//!
//! * `plan_block_cold` / `plan_block_warm` — the fusion DP over a
//!   MobileNetV2 inverted-residual block, cold (per-op solves included) and
//!   warm (all schedules cached, only the DP runs),
//! * `exec_fused` vs. `exec_sequential` — the fused depthwise → pointwise
//!   executor against the same pair run as two separate convolutions with a
//!   fully materialized intermediate tensor. The fused variant touches the
//!   intermediate only band-by-band, which is the traffic the cross-layer
//!   planner's model credits.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use conv_exec::{FusedDwPw, Tensor4};
use conv_spec::{ConvShape, MachineModel};
use mopt_core::{MOptOptimizer, OptimizerOptions};
use mopt_graph::{builders, GraphPlanner};
use mopt_service::{CacheKey, ScheduleCache};

fn fast_options() -> OptimizerOptions {
    OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }
}

fn bench_graph_planning(c: &mut Criterion) {
    let machine = MachineModel::i7_9700k();
    let graph = builders::mobilenet_v2_block(5).unwrap();
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);

    group.bench_function("plan_block_cold", |b| {
        b.iter(|| {
            let planner = GraphPlanner::new(machine.clone());
            let plan = planner
                .plan(&graph, |spec| {
                    MOptOptimizer::optimize_spec(spec, machine.clone(), fast_options())
                })
                .unwrap();
            black_box(plan.fused_volume)
        })
    });

    // Warm: every per-op schedule already cached; only the DP itself runs.
    let cache = ScheduleCache::new(64);
    let planner = GraphPlanner::new(machine.clone());
    let warm_plan = planner
        .plan(&graph, |spec| {
            cache.get_or_compute(CacheKey::new(*spec, &machine, &fast_options()), || {
                MOptOptimizer::optimize_spec(spec, machine.clone(), fast_options())
            })
        })
        .unwrap();
    assert!(warm_plan.fusions_taken >= 1);
    group.bench_function("plan_block_warm", |b| {
        b.iter(|| {
            let plan = planner
                .plan(&graph, |spec| {
                    cache.get_or_compute(CacheKey::new(*spec, &machine, &fast_options()), || {
                        unreachable!("warm plan must not solve")
                    })
                })
                .unwrap();
            black_box(plan.fused_volume)
        })
    });
    group.finish();
}

fn bench_fused_execution(c: &mut Criterion) {
    // A mid-size depthwise → pointwise pair (scaled V-stage) so one
    // iteration stays in the milliseconds.
    let dw = ConvShape::depthwise(64, 30, 3, 1);
    let pw = conv_exec::pointwise_consumer(&dw, 32);
    let fused = FusedDwPw::new(dw, pw).unwrap().with_relu_intermediate(true);
    let input = Tensor4::random(dw.n, dw.c, dw.input_h(), dw.input_w(), 7);
    let (dk, dc, dr, ds) = dw.kernel_dims();
    let dwk = Tensor4::random(dk, dc, dr, ds, 8);
    let (pk, pc, pr, ps) = pw.kernel_dims();
    let pwk = Tensor4::random(pk, pc, pr, ps, 9);

    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.throughput(Throughput::Elements((dw.flops() + pw.flops()) as u64 / 2));
    group.bench_function("exec_fused", |b| b.iter(|| black_box(fused.run(&input, &dwk, &pwk))));
    group.bench_function("exec_sequential", |b| {
        b.iter(|| black_box(fused.run_sequential(&input, &dwk, &pwk)))
    });
    group.finish();
}

criterion_group!(benches, bench_graph_planning, bench_fused_execution);
criterion_main!(benches);
