//! Criterion bench: the memory-hierarchy simulators (the hardware-counter
//! substitute used for model validation).

use cache_sim::{CacheKind, FullyAssocLru, TileTrafficSimulator, TraceSimulator};
use conv_spec::{ConvShape, MachineModel, TileConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use mopt_core::optimizer::heuristic_config;

fn bench_lru(c: &mut Criterion) {
    c.bench_function("cache_sim/lru_1m_accesses", |b| {
        b.iter(|| {
            let mut cache = FullyAssocLru::new(8192, 1);
            let mut hits = 0u64;
            for i in 0..1_000_000usize {
                if cache.access((i * 17) % 100_000, i % 5 == 0) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_tile_traffic(c: &mut Criterion) {
    let shape = ConvShape::new(1, 64, 64, 3, 3, 28, 28, 1).unwrap();
    let machine = MachineModel::i7_9700k();
    let config = heuristic_config(&shape, &machine);
    let sim = TileTrafficSimulator::default();
    c.bench_function("cache_sim/tile_traffic_full_config", |b| {
        b.iter(|| sim.simulate(&shape, &config).volume(conv_spec::TilingLevel::L3))
    });
}

fn bench_trace_sim(c: &mut Criterion) {
    let shape = ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap();
    let machine = MachineModel::tiny_test_machine();
    let config = TileConfig::untiled(&shape);
    let mut group = c.benchmark_group("cache_sim");
    group.sample_size(10);
    group.bench_function("trace_sim_small_operator", |b| {
        b.iter(|| {
            TraceSimulator::new(&shape, &machine, CacheKind::IdealFullyAssociative)
                .run(&config)
                .volume(conv_spec::TilingLevel::L1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lru, bench_tile_traffic, bench_trace_sim);
criterion_main!(benches);
