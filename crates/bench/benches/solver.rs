//! Criterion bench: the non-linear solver on a representative tile-size
//! problem (the AMPL/Ipopt substitute's cost per `ArgMinSolve` call).

use criterion::{criterion_group, criterion_main, Criterion};
use mopt_solver::{BarrierSolver, MultiStart, NlpSolver, PenaltySolver, Problem};

/// The single-level matmul-like tile problem from Sec. 2 of the paper.
fn tile_problem() -> Problem {
    let (ni, nj, nk, cap) = (1024.0, 1024.0, 1024.0, 32.0 * 1024.0);
    Problem::new(3)
        .with_bounds(vec![1.0, 1.0, 1.0], vec![ni, nj, nk])
        .with_objective(move |t| ni * nj * nk * (1.0 / t[0] + 1.0 / t[1]) + 2.0 * ni * nj)
        .with_constraint(move |t| t[0] * t[2] + t[1] * t[2] + t[0] * t[1] - cap)
}

fn bench_barrier(c: &mut Criterion) {
    let p = tile_problem();
    c.bench_function("solver/barrier_tile_problem", |b| {
        b.iter(|| BarrierSolver::fast().solve(&p, &[16.0, 16.0, 16.0]).objective)
    });
}

fn bench_penalty(c: &mut Criterion) {
    let p = tile_problem();
    c.bench_function("solver/penalty_tile_problem", |b| {
        b.iter(|| PenaltySolver::default().solve(&p, &[16.0, 16.0, 16.0]).objective)
    });
}

fn bench_multistart(c: &mut Criterion) {
    let p = tile_problem();
    c.bench_function("solver/multistart_tile_problem", |b| {
        b.iter(|| MultiStart::with_starts(2).solve(&p, &[16.0, 16.0, 16.0]).objective)
    });
}

criterion_group!(benches, bench_barrier, bench_penalty, bench_multistart);
criterion_main!(benches);
