//! Criterion bench: MOpt's design-space exploration for one operator —
//! the "9 to 23 seconds per operator" cost the paper quotes in Sec. 12
//! (reduced here to two permutation classes so the bench stays short).

use conv_spec::{ConvShape, MachineModel};
use criterion::{criterion_group, criterion_main, Criterion};
use mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};

fn bench_optimize(c: &mut Criterion) {
    let shape = ConvShape::new(1, 64, 32, 3, 3, 28, 28, 1).unwrap();
    let machine = MachineModel::i7_9700k();
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("mopt_optimize_2classes", |b| {
        b.iter(|| {
            let opts =
                OptimizerOptions { max_classes: 2, multistart: 1, ..OptimizerOptions::fast() };
            MOptOptimizer::new(shape, machine.clone(), opts).optimize().best().predicted_cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
