//! Experiment implementations, one function per table / figure of the paper.

use autotune::{ModelGuidedTuner, SearchSpace, Tuner};
use baselines::OneDnnLike;
use conv_spec::{
    benchmarks, BenchmarkOp, ConvShape, MachineModel, Permutation, TileConfig, TilingLevel,
};
use mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};
use mopt_core::validation::{validate_operator, ValidationReport};
use mopt_model::cost::{single_level_volume, CostOptions};
use mopt_model::multilevel::{MultiLevelModel, ParallelSpec};
use mopt_model::prune::{pruned_classes, sample_tiles};
use serde::{Deserialize, Serialize};

/// How large the benchmark operators used by an experiment are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// The original Table-1 shapes.
    Full,
    /// Spatial extents capped at `hw`, channel extents capped at `ch`
    /// (structure preserved). Used so the experiments finish quickly.
    Scaled {
        /// Maximum output height/width.
        hw: usize,
        /// Maximum channel count.
        ch: usize,
    },
}

impl ExperimentScale {
    /// The default quick scale used by the committed experiment outputs.
    pub fn quick() -> Self {
        ExperimentScale::Scaled { hw: 28, ch: 128 }
    }

    /// The benchmark operators at this scale.
    pub fn operators(&self) -> Vec<BenchmarkOp> {
        match self {
            ExperimentScale::Full => benchmarks::all_operators(),
            ExperimentScale::Scaled { hw, ch } => benchmarks::scaled_operators(*hw, *ch),
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 5: model-prediction loss over a sampled configuration set
// ---------------------------------------------------------------------------

/// One row of the Fig. 5 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Operator label.
    pub name: String,
    /// Number of sampled configurations.
    pub samples: usize,
    /// Top-1 loss of performance (fraction, 0 = model picked the best).
    pub top1_loss: f64,
    /// Top-2 loss.
    pub top2_loss: f64,
    /// Top-5 loss.
    pub top5_loss: f64,
    /// Spearman rank correlation of model cost vs measured cost.
    pub rank_correlation: f64,
}

/// Reproduce Fig. 5: for each operator, sample `samples` configurations from
/// the auto-tuning template space, rank them with the analytical model,
/// "measure" them with the tile-granularity traffic simulator, and report the
/// top-1/2/5 loss of performance.
pub fn fig5_model_loss(
    machine: &MachineModel,
    scale: ExperimentScale,
    samples: usize,
    operators: Option<&[String]>,
) -> Vec<Fig5Row> {
    let ops = filter_ops(scale.operators(), operators);
    ops.iter()
        .map(|op| {
            let report = validation_report(op, machine, samples);
            Fig5Row {
                name: op.name.clone(),
                samples: report.points.len(),
                top1_loss: report.top_k_loss(1),
                top2_loss: report.top_k_loss(2),
                top5_loss: report.top_k_loss(5),
                rank_correlation: report.cost_rank_correlation(),
            }
        })
        .collect()
}

fn validation_report(op: &BenchmarkOp, machine: &MachineModel, samples: usize) -> ValidationReport {
    let space = SearchSpace::new(&op.shape, machine);
    let configs = space.sample_many(samples, 0xF16_5EED ^ op.name.len() as u64);
    validate_operator(&op.name, &op.shape, machine, &configs, 1)
}

// ---------------------------------------------------------------------------
// Figure 6: rank ordering vs measured performance and per-level counters
// ---------------------------------------------------------------------------

/// The Fig. 6 reproduction for one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Report {
    /// Operator label.
    pub name: String,
    /// Rank correlation of model cost vs measured performance proxy.
    pub performance_correlation: f64,
    /// Rank correlation of model cost vs measured data volume per level
    /// (Register, L1, L2, L3).
    pub volume_correlations: [f64; 4],
    /// The level the model predicts as the bottleneck for the model-best
    /// configuration.
    pub predicted_bottleneck: TilingLevel,
    /// The sampled configurations ordered by predicted cost: pairs of
    /// (predicted cost, measured GFLOPS proxy), ready for plotting.
    pub ordered_points: Vec<(f64, f64)>,
}

/// Reproduce Fig. 6 for a set of operators (the paper uses Resnet9, Mobnet2,
/// Yolo5).
pub fn fig6_rank_correlation(
    machine: &MachineModel,
    scale: ExperimentScale,
    samples: usize,
    operators: &[String],
) -> Vec<Fig6Report> {
    let ops = filter_ops(scale.operators(), Some(operators));
    ops.iter()
        .map(|op| {
            let report = validation_report(op, machine, samples);
            let mut ordered: Vec<(f64, f64)> = report
                .points
                .iter()
                .map(|p| (p.predicted.bottleneck_cost, p.measured_gflops))
                .collect();
            ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            // Correlate predicted cost with measured *performance*: expect a
            // strong negative correlation, report its magnitude with sign.
            let predicted: Vec<f64> =
                report.points.iter().map(|p| p.predicted.bottleneck_cost).collect();
            let perf: Vec<f64> = report.points.iter().map(|p| p.measured_gflops).collect();
            let perf_corr = mopt_core::validation::spearman_correlation(&predicted, &perf);
            let volume_correlations = [
                report.volume_rank_correlation(TilingLevel::Register),
                report.volume_rank_correlation(TilingLevel::L1),
                report.volume_rank_correlation(TilingLevel::L2),
                report.volume_rank_correlation(TilingLevel::L3),
            ];
            let best = report
                .points
                .iter()
                .min_by(|a, b| {
                    a.predicted
                        .bottleneck_cost
                        .partial_cmp(&b.predicted.bottleneck_cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one sampled point");
            Fig6Report {
                name: op.name.clone(),
                performance_correlation: perf_corr,
                volume_correlations,
                predicted_bottleneck: best.predicted.bottleneck,
                ordered_points: ordered,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: MOpt vs oneDNN-like vs AutoTVM-like
// ---------------------------------------------------------------------------

/// One row of the Fig. 7 / Fig. 8 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Operator label.
    pub name: String,
    /// Projected (or measured) GFLOPS of the auto-tuner's best configuration.
    pub tvm_like_gflops: f64,
    /// GFLOPS of the library baseline.
    pub onednn_like_gflops: f64,
    /// GFLOPS of MOpt-1.
    pub mopt1_gflops: f64,
    /// GFLOPS of MOpt-5 (best of the top five model configurations).
    pub mopt5_gflops: f64,
}

impl Fig7Row {
    /// MOpt-1 performance relative to the auto-tuner (the bar heights of
    /// Fig. 7/8 are normalized to TVM).
    pub fn mopt1_vs_tvm(&self) -> f64 {
        self.mopt1_gflops / self.tvm_like_gflops.max(1e-12)
    }

    /// oneDNN-like performance relative to the auto-tuner.
    pub fn onednn_vs_tvm(&self) -> f64 {
        self.onednn_like_gflops / self.tvm_like_gflops.max(1e-12)
    }

    /// MOpt-1 speed-up over the library baseline.
    pub fn mopt1_vs_onednn(&self) -> f64 {
        self.mopt1_gflops / self.onednn_like_gflops.max(1e-12)
    }
}

/// Reproduce Fig. 7 (i7-9700K) / Fig. 8 (i9-10980XE): for every operator,
/// compare the projected performance of MOpt-1 and MOpt-5 against the
/// oneDNN-like fixed heuristic and an AutoTVM-like budgeted auto-tuner.
///
/// Performance is projected with the same machine-independent figure of merit
/// used for validation (bandwidth-scaled bottleneck data movement combined
/// with the compute ceiling), evaluated on the requested `machine` model, so
/// the experiment reproduces the comparison *shape* without requiring the
/// paper's hardware. The auto-tuner optimizes the measured (simulated) cost,
/// exactly as AutoTVM optimizes wall-clock time.
pub fn fig7_performance_comparison(
    machine: &MachineModel,
    scale: ExperimentScale,
    tuner_trials: usize,
    operators: Option<&[String]>,
) -> Vec<Fig7Row> {
    let ops = filter_ops(scale.operators(), operators);
    let threads = machine.threads;
    ops.iter()
        .map(|op| {
            let shape = op.shape;
            let parallel = ParallelSpec::default_for(&shape, threads);

            // Measured-cost evaluator shared by the tuner and the scoring of
            // library / MOpt configurations.
            let score = |config: &TileConfig| -> f64 {
                projected_gflops(&shape, config, machine, threads, parallel)
            };

            // --- AutoTVM-like tuner.
            let space = SearchSpace::new(&shape, machine);
            let mut tuner = ModelGuidedTuner::new(0xA11CE ^ op.name.len() as u64);
            let result = tuner.tune(
                &space,
                &mut |cfg| {
                    // The tuner minimizes cost = 1 / GFLOPS.
                    1.0 / score(cfg).max(1e-9)
                },
                tuner_trials,
            );
            let tvm_like_gflops = score(&result.best().config);

            // --- oneDNN-like fixed heuristic.
            let lib = OneDnnLike::new(machine.clone());
            let plan = lib.plan(&shape);
            let onednn_like_gflops = score(&plan.config);

            // --- MOpt.
            let mut opts = OptimizerOptions::parallel(machine);
            opts.multistart = 1;
            let optimizer = MOptOptimizer::new(shape, machine.clone(), opts);
            let mopt = optimizer.optimize();
            let mopt1_gflops = score(&mopt.best().config);
            let mopt5_gflops =
                mopt.top(5).iter().map(|c| score(&c.config)).fold(f64::NEG_INFINITY, f64::max);

            Fig7Row {
                name: op.name.clone(),
                tvm_like_gflops,
                onednn_like_gflops,
                mopt1_gflops,
                mopt5_gflops,
            }
        })
        .collect()
}

/// The projected-GFLOPS figure of merit used by the Fig. 7/8 reproduction:
/// the analytical model evaluated with the *configuration's own* permutation
/// and tile sizes on the target machine (i.e. what the measured performance
/// of the generated code is limited by, under the paper's memory-bottleneck
/// assumption).
pub fn projected_gflops(
    shape: &ConvShape,
    config: &TileConfig,
    machine: &MachineModel,
    threads: usize,
    parallel: ParallelSpec,
) -> f64 {
    let model = MultiLevelModel::new(*shape, machine.clone(), config.permutation.clone())
        .with_parallel(parallel);
    model.predict_config(config).projected_gflops(machine, threads)
}

// ---------------------------------------------------------------------------
// Sec. 12: search-cost comparison
// ---------------------------------------------------------------------------

/// One row of the search-cost experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCostRow {
    /// Operator label.
    pub name: String,
    /// Seconds MOpt spent in design-space exploration.
    pub mopt_seconds: f64,
    /// Seconds the auto-tuner spent for its trial budget.
    pub tuner_seconds: f64,
    /// Auto-tuner trial budget used.
    pub tuner_trials: usize,
}

/// Reproduce the Sec. 12 search-cost observation (MOpt's search time is
/// roughly problem-size independent; the auto-tuner's grows with the
/// operator's work because every trial executes the candidate).
pub fn searchcost_comparison(
    machine: &MachineModel,
    scale: ExperimentScale,
    tuner_trials: usize,
    operators: &[String],
) -> Vec<SearchCostRow> {
    let ops = filter_ops(scale.operators(), Some(operators));
    ops.iter()
        .map(|op| {
            let shape = op.shape;
            let mut opts = OptimizerOptions::parallel(machine);
            opts.multistart = 1;
            let optimizer = MOptOptimizer::new(shape, machine.clone(), opts);
            let mopt = optimizer.optimize();

            let space = SearchSpace::new(&shape, machine);
            let sim = cache_sim::TileTrafficSimulator::new(200_000);
            let start = std::time::Instant::now();
            let mut tuner = ModelGuidedTuner::new(7);
            let _ = tuner.tune(
                &space,
                &mut |cfg| {
                    // Each trial "executes" the candidate on the simulator,
                    // whose cost grows with the operator size — mirroring
                    // AutoTVM's measured-execution trials.
                    let dm = sim.simulate(&shape, cfg);
                    dm.bottleneck(machine, machine.threads).1
                },
                tuner_trials,
            );
            let tuner_seconds = start.elapsed().as_secs_f64();
            SearchCostRow {
                name: op.name.clone(),
                mopt_seconds: mopt.optimize_seconds,
                tuner_seconds,
                tuner_trials,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablation: 8 pruned classes vs exhaustive 5040 permutations (single level)
// ---------------------------------------------------------------------------

/// One row of the pruning ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Operator label.
    pub name: String,
    /// Best single-level data volume over the 8 pruned class representatives
    /// (minimized over a tile-size sample grid).
    pub pruned_best: f64,
    /// Best single-level data volume over all 5040 permutations on the same
    /// tile-size sample grid.
    pub exhaustive_best: f64,
    /// Number of permutations examined by the exhaustive search.
    pub exhaustive_count: usize,
}

impl AblationRow {
    /// Ratio pruned / exhaustive (1.0 when pruning loses nothing).
    pub fn ratio(&self) -> f64 {
        self.pruned_best / self.exhaustive_best.max(1e-300)
    }
}

/// Empirically verify the pruning theorem: over a grid of sampled tile sizes,
/// the best volume achievable with the 8 pruned representatives equals the
/// best over all 5040 permutations.
pub fn ablation_pruning(
    scale: ExperimentScale,
    samples: usize,
    operators: &[String],
) -> Vec<AblationRow> {
    let ops = filter_ops(scale.operators(), Some(operators));
    let opts = CostOptions::default();
    let all_perms = Permutation::enumerate_all();
    ops.iter()
        .map(|op| {
            let tiles = sample_tiles(&op.shape, samples);
            let pruned_best = pruned_classes()
                .iter()
                .flat_map(|c| {
                    tiles
                        .iter()
                        .map(|t| {
                            single_level_volume(&op.shape, &c.representative, t, &opts).total()
                        })
                        .collect::<Vec<_>>()
                })
                .fold(f64::INFINITY, f64::min);
            let exhaustive_best = all_perms
                .iter()
                .flat_map(|p| {
                    tiles
                        .iter()
                        .map(|t| single_level_volume(&op.shape, p, t, &opts).total())
                        .collect::<Vec<_>>()
                })
                .fold(f64::INFINITY, f64::min);
            AblationRow {
                name: op.name.clone(),
                pruned_best,
                exhaustive_best,
                exhaustive_count: all_perms.len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------

fn filter_ops(ops: Vec<BenchmarkOp>, names: Option<&[String]>) -> Vec<BenchmarkOp> {
    match names {
        None => ops,
        Some([]) => ops,
        Some(list) => ops
            .into_iter()
            .filter(|op| {
                list.iter().any(|n| {
                    op.name.trim_end_matches('*').eq_ignore_ascii_case(n.trim_end_matches('*'))
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale::Scaled { hw: 10, ch: 32 }
    }

    #[test]
    fn scale_preserves_operator_count() {
        assert_eq!(ExperimentScale::Full.operators().len(), 32);
        assert_eq!(tiny_scale().operators().len(), 32);
    }

    #[test]
    fn fig5_rows_have_sane_losses() {
        let machine = MachineModel::i7_9700k();
        let names = vec!["R9".to_string(), "M5".to_string()];
        let rows = fig5_model_loss(&machine, tiny_scale(), 16, Some(&names));
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!((0.0..=1.0).contains(&r.top1_loss), "{r:?}");
            assert!(r.top5_loss <= r.top1_loss + 1e-12);
            assert!(r.rank_correlation > 0.0, "model should rank better than random: {r:?}");
        }
    }

    #[test]
    fn fig6_reports_correlations() {
        let machine = MachineModel::i7_9700k();
        let names = vec!["R9".to_string()];
        let reports = fig6_rank_correlation(&machine, tiny_scale(), 16, &names);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.ordered_points.len(), 16);
        // Predicted cost and measured performance should be anti-correlated.
        assert!(r.performance_correlation < 0.0, "corr = {}", r.performance_correlation);
    }

    #[test]
    fn fig7_mopt_competitive_on_small_operator() {
        let machine = MachineModel::i7_9700k();
        let names = vec!["R12".to_string()];
        let rows = fig7_performance_comparison(&machine, tiny_scale(), 12, Some(&names));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.mopt1_gflops > 0.0 && r.tvm_like_gflops > 0.0 && r.onednn_like_gflops > 0.0);
        assert!(r.mopt5_gflops >= r.mopt1_gflops - 1e-9);
        // The headline claim, scaled down: MOpt-5 should be at least
        // competitive with the budgeted auto-tuner.
        assert!(
            r.mopt5_gflops >= 0.7 * r.tvm_like_gflops,
            "MOpt-5 {} far below tuner {}",
            r.mopt5_gflops,
            r.tvm_like_gflops
        );
    }

    #[test]
    fn searchcost_rows_record_times() {
        let machine = MachineModel::i7_9700k();
        let names = vec!["Y5".to_string()];
        let rows = searchcost_comparison(&machine, tiny_scale(), 4, &names);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].mopt_seconds > 0.0);
        assert!(rows[0].tuner_seconds > 0.0);
        assert_eq!(rows[0].tuner_trials, 4);
    }

    #[test]
    fn pruning_ablation_shows_no_loss() {
        let rows =
            ablation_pruning(ExperimentScale::Scaled { hw: 8, ch: 16 }, 3, &["R12".to_string()]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].exhaustive_count, 5040);
        assert!(
            rows[0].ratio() <= 1.0 + 1e-9,
            "pruned best {} worse than exhaustive {}",
            rows[0].pruned_best,
            rows[0].exhaustive_best
        );
    }

    #[test]
    fn filter_ops_by_name() {
        let ops =
            filter_ops(benchmarks::all_operators(), Some(&["y0".to_string(), "R10".to_string()]));
        assert_eq!(ops.len(), 2);
        let all = filter_ops(benchmarks::all_operators(), None);
        assert_eq!(all.len(), 32);
    }
}
