//! Plain-text table formatting shared by the experiment binaries.

/// Geometric mean of positive values (0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Format a table with a header row and aligned columns.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a crude ASCII bar (used for the relative-performance figures).
pub fn bar(value: f64, unit: f64, max_width: usize) -> String {
    let n = ((value / unit).round() as usize).min(max_width);
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_alignment_and_content() {
        let t = format_table(
            &["op", "gflops"],
            &[
                vec!["Y0".to_string(), "123.4".to_string()],
                vec!["ResNet-R12".to_string(), "9.1".to_string()],
            ],
        );
        assert!(t.contains("op"));
        assert!(t.contains("ResNet-R12"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(5.0, 1.0, 3), "###");
        assert_eq!(bar(2.0, 1.0, 10), "##");
        assert_eq!(bar(0.0, 1.0, 10), "");
    }
}
