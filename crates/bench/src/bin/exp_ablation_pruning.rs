//! Ablation: verify empirically that restricting the permutation search to
//! the 8 pruned equivalence classes (Sec. 4) loses nothing relative to the
//! exhaustive 5040-permutation search, on a grid of sampled tile sizes.
//!
//! Usage: exp_ablation_pruning [--samples N] [--ops R12,M9,...]

use mopt_bench::{ablation_pruning, format_table, ExperimentScale};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut samples = 6;
    let mut ops: Vec<String> = vec!["R12".into(), "M9".into(), "Y19".into()];
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--samples" => {
                samples = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(samples);
                i += 1;
            }
            "--ops" => {
                if let Some(v) = argv.get(i + 1) {
                    ops = v.split(',').map(|s| s.to_string()).collect();
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let rows = ablation_pruning(ExperimentScale::Scaled { hw: 14, ch: 64 }, samples, &ops);
    println!("== Ablation — 8 pruned permutation classes vs exhaustive 5040 permutations ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.3e}", r.pruned_best),
                format!("{:.3e}", r.exhaustive_best),
                format!("{:.4}", r.ratio()),
                r.exhaustive_count.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Operator", "best (8 classes)", "best (5040 perms)", "ratio", "perms"],
            &table
        )
    );
    println!("(ratio 1.0 = pruning loses nothing, as the paper's algebraic argument guarantees)");
}
