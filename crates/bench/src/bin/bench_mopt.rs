//! `bench_mopt` — the serving-stack benchmark harness.
//!
//! Drives one benchmark suite through a [`mopt_service::ServiceState`] three
//! times — cold (optimizer solves), warm (in-process cache), and db-warm (a
//! fresh process over the populated schedule database, zero solves) — and
//! emits a machine-readable `BENCH_mopt.json` with per-phase solve
//! latencies, cache and database hit rates, the fused-vs-unfused DRAM
//! traffic of a MobileNetV2 block plan, and measured executor GFLOP/s
//! (scalar tiled vs blocked NCHWc vs the runtime-dispatched SIMD
//! microkernel) on a representative shape. CI runs this to keep the
//! persistence-tier and executor numbers visible per commit.
//!
//! ```text
//! bench_mopt [--out BENCH_mopt.json] [--suite mobilenetv2] [--preset i7] [--threads N]
//! ```

use std::time::Instant;

use conv_exec::{active_backend, NchwcConv, SimdBackend, Tensor4, TiledConv};
use conv_spec::{ConvShape, LayoutConfig, MachineModel};
use mopt_core::{MOptOptimizer, OptimizerOptions};
use mopt_service::{
    DbTierStats, FlightBreakdown, MachineSpec, Request, Response, ServiceState, Tier,
};
use serde::Serialize;

/// Latency attribution for one serving tier within a phase.
#[derive(Debug, Default, Serialize)]
struct TierLatency {
    /// Requests this tier answered.
    requests: usize,
    /// Total wall-clock microseconds spent in those requests.
    total_micros: f64,
    /// Mean per-request latency in microseconds (0 when the tier served
    /// nothing).
    mean_micros: f64,
    /// Worst per-request latency in microseconds.
    max_micros: f64,
}

impl TierLatency {
    fn record(&mut self, micros: f64) {
        self.requests += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    fn finish(&mut self) {
        if self.requests > 0 {
            self.mean_micros = self.total_micros / self.requests as f64;
        }
    }
}

/// Latency summary for one serving phase.
#[derive(Debug, Serialize)]
struct PhaseLatency {
    /// Requests issued.
    requests: usize,
    /// Requests answered by the in-process cache.
    cache_tier: usize,
    /// Requests answered by the schedule database (re-rank, no solve).
    db_tier: usize,
    /// Requests answered by a fresh optimizer solve.
    solver_tier: usize,
    /// Total wall-clock seconds across the phase.
    total_seconds: f64,
    /// Mean per-request latency in microseconds.
    mean_micros: f64,
    /// Worst per-request latency in microseconds.
    max_micros: f64,
    /// Latency attributed to requests the in-process cache answered.
    cache_latency: TierLatency,
    /// Latency attributed to requests the schedule database answered.
    db_latency: TierLatency,
    /// Latency attributed to requests that ran an optimizer solve.
    solver_latency: TierLatency,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    preset: String,
    threads: usize,
    /// Empty state, no database content: every request is a solve.
    cold: PhaseLatency,
    /// Same process again: every request is an in-process cache hit.
    warm: PhaseLatency,
    /// A fresh process over the populated database: every request is a
    /// db-tier re-rank, zero optimizer solves.
    db_warm: PhaseLatency,
    /// Cache hit fraction over the cold+warm phases.
    cache_hit_rate: f64,
    /// Db-tier hit fraction in the db-warm process.
    db_hit_rate: f64,
    /// The db-warm process's full database-tier counters.
    db: DbTierStats,
    /// Modeled DRAM traffic (elements) of the fused MobileNetV2 block plan.
    fused_volume: f64,
    /// Modeled DRAM traffic (elements) of the same block planned per-layer.
    unfused_volume: f64,
    /// fused / unfused (< 1.0 when fusion pays).
    fused_traffic_ratio: f64,
    /// Single-flight counters after the sequential cold+warm phases: every
    /// solve led its own flight, nothing coalesced.
    flight: FlightBreakdown,
    /// Concurrent clients in the thundering-herd phase.
    herd_clients: usize,
    /// Flight counters of the herd phase alone: `led + coalesced ==
    /// herd_clients`, with exactly one led solve when coalescing works.
    herd_flight: FlightBreakdown,
    /// Measured executor throughput on a representative conv shape: scalar
    /// tiled loop nest, blocked-NCHWc executor, and the runtime-dispatched
    /// SIMD microkernel.
    exec: ExecReport,
}

/// One executor's measured throughput row in the `exec` section.
#[derive(Debug, Serialize)]
struct ExecutorThroughput {
    /// `tiled-scalar`, `nchwc`, or `microkernel-simd`.
    executor: String,
    /// The microkernel backend the run dispatched to (`scalar` / `avx2fma`).
    backend: String,
    /// The data layout the executor ran under (see `LayoutConfig::tag`).
    layout: String,
    /// Best-of-repeats wall-clock seconds for one convolution.
    seconds: f64,
    /// `flops / seconds / 1e9` for the best repeat.
    gflops: f64,
    /// Worst absolute element difference against the scalar tiled output
    /// (0.0 for scalar executors; ULP-bounded for FMA backends).
    max_abs_delta: f64,
}

/// Measured executor throughput on one representative conv shape.
#[derive(Debug, Serialize)]
struct ExecReport {
    /// The shape driven through every executor.
    shape: ConvShape,
    /// FLOPs of one convolution (multiply + add counted separately).
    flops: usize,
    /// Timed repeats per executor; `seconds` is the best of them.
    repeats: usize,
    /// One row per executor.
    executors: Vec<ExecutorThroughput>,
}

/// Time one executor: a warmup run (also the correctness sample), then
/// `repeats` timed runs keeping the best.
fn time_exec(repeats: usize, mut run: impl FnMut() -> Tensor4) -> (f64, Tensor4) {
    let output = run();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let started = Instant::now();
        let out = run();
        best = best.min(started.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    (best, output)
}

/// Benchmark the three executors on one representative conv shape, using the
/// schedule the optimizer itself picks for that shape. The scalar tiled loop
/// nest is the reference: the other rows report their worst element delta
/// against it (exactly 0.0 unless an FMA backend fuses roundings).
fn run_exec_bench(repeats: usize) -> ExecReport {
    // ResNet-ish mid-layer: SIMD-friendly channel counts, big enough that
    // throughput is memory-plus-compute, small enough for a debug-build run.
    let shape = ConvShape::new_general(1, 64, 64, 3, 3, 28, 28, 1, 1, 1).expect("bench shape");
    let machine = MachineModel::i7_9700k();
    let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
    let config = MOptOptimizer::new(shape, machine, options).optimize().best().config.clone();

    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 11);
    let kernel = Tensor4::random(shape.k, shape.reduction_c(), shape.r, shape.s, 13);

    let scalar = TiledConv::new(shape, config.clone(), 1)
        .expect("scalar tiled executor")
        .with_backend(SimdBackend::Scalar);
    let (scalar_seconds, reference) = time_exec(repeats, || scalar.run(&input, &kernel));

    let simd = TiledConv::new(shape, config.clone(), 1)
        .expect("simd tiled executor")
        .with_backend(active_backend());
    let (simd_seconds, simd_out) = time_exec(repeats, || simd.run(&input, &kernel));

    let blocked = NchwcConv::new(shape, config.with_layout(LayoutConfig::blocked(8)), 1)
        .expect("nchwc executor");
    let (nchwc_seconds, nchwc_out) = time_exec(repeats, || blocked.run(&input, &kernel));

    let delta = |out: &Tensor4| {
        reference
            .as_slice()
            .iter()
            .zip(out.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0f64, f64::max)
    };
    let flops = shape.flops();
    let row = |executor: &str,
               backend: SimdBackend,
               layout: &LayoutConfig,
               seconds: f64,
               max_abs_delta: f64| ExecutorThroughput {
        executor: executor.to_string(),
        backend: backend.name().to_string(),
        layout: layout.tag(),
        seconds,
        gflops: flops as f64 / seconds / 1e9,
        max_abs_delta,
    };
    let default_layout = LayoutConfig::default();
    let blocked_layout = LayoutConfig::blocked(8);
    ExecReport {
        shape,
        flops,
        repeats,
        executors: vec![
            row("tiled-scalar", SimdBackend::Scalar, &default_layout, scalar_seconds, 0.0),
            row("nchwc", active_backend(), &blocked_layout, nchwc_seconds, delta(&nchwc_out)),
            row(
                "microkernel-simd",
                active_backend(),
                &default_layout,
                simd_seconds,
                delta(&simd_out),
            ),
        ],
    }
}

/// Thundering-herd phase: `clients` threads issue the same cold `Optimize`
/// concurrently against a fresh state; the single-flight layer should run
/// one solve and coalesce the rest onto it. The solve window is widened
/// (the same hook the stress tests use) so the measurement is about the
/// counters, not scheduler luck — herd latency is intentionally not
/// reported.
fn run_herd(preset: &str, threads: usize, clients: usize) -> FlightBreakdown {
    let state = std::sync::Arc::new(ServiceState::new(64));
    state.set_test_solve_delay(std::time::Duration::from_millis(200));
    let request = Request::Optimize {
        spec: None,
        op: Some("Y0".to_string()),
        shape: None,
        machine: MachineSpec::Preset(preset.to_string()),
        options: Some(OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }),
        threads: Some(threads),
        trace: None,
    };
    let gate = std::sync::Arc::new(std::sync::Barrier::new(clients));
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let (state, request, gate) = (state.clone(), request.clone(), gate.clone());
            scope.spawn(move || {
                gate.wait();
                match state.handle(&request) {
                    Response::Optimized { .. } => {}
                    other => panic!("bench_mopt: herd Optimize failed: {other:?}"),
                }
            });
        }
    });
    state.flight_stats()
}

fn run_phase(state: &ServiceState, suite: &str, preset: &str, threads: usize) -> PhaseLatency {
    let ops: Vec<String> = conv_spec::benchmarks::extended_operators()
        .iter()
        .filter(|op| {
            op.suite.name().to_ascii_lowercase().replace(['-', '_'], "").contains(suite)
                || suite == "extended"
        })
        .map(|op| op.name.clone())
        .collect();
    assert!(!ops.is_empty(), "suite `{suite}` selected no operators");
    let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
    let mut cache_latency = TierLatency::default();
    let mut db_latency = TierLatency::default();
    let mut solver_latency = TierLatency::default();
    let mut total_seconds = 0.0;
    let mut max_micros: f64 = 0.0;
    for op in &ops {
        let request = Request::Optimize {
            spec: None,
            op: Some(op.clone()),
            shape: None,
            machine: MachineSpec::Preset(preset.to_string()),
            options: Some(options.clone()),
            threads: Some(threads),
            trace: None,
        };
        let started = Instant::now();
        let response = state.handle(&request);
        let elapsed = started.elapsed().as_secs_f64();
        total_seconds += elapsed;
        max_micros = max_micros.max(elapsed * 1e6);
        match response {
            Response::Optimized { tier, .. } => match tier {
                Some(Tier::Cache) => cache_latency.record(elapsed * 1e6),
                Some(Tier::Db) => db_latency.record(elapsed * 1e6),
                Some(Tier::Solver) | None => solver_latency.record(elapsed * 1e6),
            },
            other => panic!("bench_mopt: Optimize for {op} failed: {other:?}"),
        }
    }
    cache_latency.finish();
    db_latency.finish();
    solver_latency.finish();
    PhaseLatency {
        requests: ops.len(),
        cache_tier: cache_latency.requests,
        db_tier: db_latency.requests,
        solver_tier: solver_latency.requests,
        total_seconds,
        mean_micros: total_seconds * 1e6 / ops.len() as f64,
        max_micros,
        cache_latency,
        db_latency,
        solver_latency,
    }
}

fn fused_traffic(state: &ServiceState, preset: &str) -> (f64, f64) {
    let request = Request::PlanGraph {
        block: Some("mbv2-block5".into()),
        graph: None,
        machine: MachineSpec::Preset(preset.to_string()),
        options: Some(OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() }),
        threads: None,
        workers: Some(4),
        trace: None,
    };
    match state.handle(&request) {
        Response::GraphPlanned { plan, .. } => (plan.fused_volume, plan.unfused_volume),
        other => panic!("bench_mopt: PlanGraph failed: {other:?}"),
    }
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_mopt.json");
    let mut suite = "mobilenetv2".to_string();
    let mut preset = "i7".to_string();
    let mut threads = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().expect("--out needs a path").into(),
            "--suite" => suite = it.next().expect("--suite needs a name").to_ascii_lowercase(),
            "--preset" => preset = it.next().expect("--preset needs a name"),
            "--threads" => {
                threads = it.next().expect("--threads needs a number").parse().expect("--threads")
            }
            "--help" | "-h" => {
                println!(
                    "bench_mopt — serving-stack benchmark harness\n\n\
                     USAGE:\n  bench_mopt [--out BENCH_mopt.json] [--suite mobilenetv2] \
                     [--preset i7] [--threads N]\n\n\
                     Emits cold / warm / db-warm solve latency, cache + db hit rates, and\n\
                     fused-vs-unfused DRAM traffic as JSON."
                );
                return;
            }
            other => {
                eprintln!("bench_mopt: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let db_dir = std::env::temp_dir().join(format!("bench-mopt-db-{}", std::process::id()));
    std::fs::remove_dir_all(&db_dir).ok();

    // Cold and warm phases share one process; cold solves write through to
    // the database.
    let state = ServiceState::new(512).with_db(db_dir.clone()).expect("open bench db");
    let cold = run_phase(&state, &suite, &preset, threads);
    let warm = run_phase(&state, &suite, &preset, threads);
    let cache_stats = state.cache.stats();
    let cache_hit_rate = if cache_stats.hits + cache_stats.misses == 0 {
        0.0
    } else {
        cache_stats.hits as f64 / (cache_stats.hits + cache_stats.misses) as f64
    };
    state.db().expect("db attached").flush().expect("flush bench db");

    // Db-warm phase: a fresh process image — empty cache, populated db.
    let fresh = ServiceState::new(512).with_db(db_dir.clone()).expect("reopen bench db");
    let db_warm = run_phase(&fresh, &suite, &preset, threads);
    let db_stats = fresh.db().expect("db attached").stats();
    let db_hit_rate = db_stats.hit_rate();

    let (fused_volume, unfused_volume) = fused_traffic(&fresh, &preset);

    let herd_clients = 8;
    let herd_flight = run_herd(&preset, threads, herd_clients);

    let exec = run_exec_bench(3);

    let report = Report {
        suite,
        preset,
        threads,
        cold,
        warm,
        db_warm,
        cache_hit_rate,
        db_hit_rate,
        db: db_stats,
        fused_volume,
        unfused_volume,
        fused_traffic_ratio: fused_volume / unfused_volume,
        flight: state.flight_stats(),
        herd_clients,
        herd_flight,
        exec,
    };
    let text = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    eprintln!("bench_mopt: report written to {}", out.display());
    std::fs::remove_dir_all(&db_dir).ok();

    // Self-check: per-tier latency attribution must account for every
    // request in every phase, so consumers of BENCH_mopt.json can trust it.
    for phase in [&report.cold, &report.warm, &report.db_warm] {
        let attributed = phase.cache_latency.requests
            + phase.db_latency.requests
            + phase.solver_latency.requests;
        if attributed != phase.requests {
            eprintln!(
                "bench_mopt: tier attribution covers {attributed} of {} requests",
                phase.requests
            );
            std::process::exit(1);
        }
    }
    // Self-check: the db-warm phase must have run without optimizer solves.
    if report.db_warm.solver_tier != 0 {
        eprintln!(
            "bench_mopt: db-warm phase ran {} optimizer solves (expected 0)",
            report.db_warm.solver_tier
        );
        std::process::exit(1);
    }
    // Self-checks on the coalescing counters: sequential phases never
    // coalesce, and the herd accounts for every client exactly once, with
    // exactly one led solve inside the widened window.
    if report.flight.optimize.coalesced != 0 {
        eprintln!("bench_mopt: sequential phases reported coalesced solves");
        std::process::exit(1);
    }
    let herd = &report.herd_flight.optimize;
    if herd.led != 1 || (herd.led + herd.coalesced) as usize != report.herd_clients {
        eprintln!(
            "bench_mopt: herd counters inconsistent (led {}, coalesced {}, clients {})",
            herd.led, herd.coalesced, report.herd_clients
        );
        std::process::exit(1);
    }
    // Self-checks on the executor rows: throughput is finite and positive,
    // seconds·gflops reproduces the shape's FLOPs, and every executor agrees
    // with the scalar reference to FMA rounding tolerance.
    for exec_row in &report.exec.executors {
        let rebuilt = exec_row.gflops * exec_row.seconds * 1e9;
        let flops = report.exec.flops as f64;
        if !(exec_row.gflops.is_finite() && exec_row.gflops > 0.0)
            || (rebuilt - flops).abs() > flops * 1e-6
            || exec_row.max_abs_delta > 1e-4
        {
            eprintln!(
                "bench_mopt: executor row `{}` inconsistent \
                 (gflops {}, seconds {}, max_abs_delta {})",
                exec_row.executor, exec_row.gflops, exec_row.seconds, exec_row.max_abs_delta
            );
            std::process::exit(1);
        }
    }
}
