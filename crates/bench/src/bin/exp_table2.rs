//! Reproduce Table 2: qualitative strengths/limitations of oneDNN, TVM and
//! MOpt, annotated with how each system is realized in this reproduction.

use mopt_bench::format_table;

fn main() {
    println!("== Table 2 — Strengths/limitations of oneDNN, TVM and MOpt ==");
    let rows = vec![
        vec![
            "oneDNN (baselines::OneDnnLike)".to_string(),
            "no".to_string(),
            "Highly optimized (im2col+GEMM / fixed direct blocking here)".to_string(),
            "Minimal (fixed heuristic plan)".to_string(),
        ],
        vec![
            "TVM (autotune::ModelGuidedTuner)".to_string(),
            "yes".to_string(),
            "N/A (LLVM-generated; template space here)".to_string(),
            "Limited (template + trial budget)".to_string(),
        ],
        vec![
            "MOpt (mopt_core::MOptOptimizer)".to_string(),
            "no".to_string(),
            "Not highly optimized (Rust microkernel)".to_string(),
            "Comprehensive (8 pruned classes x NLP tile sizes)".to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(&["System", "Auto-tuning", "Microkernel", "Design-space exploration"], &rows)
    );
}
