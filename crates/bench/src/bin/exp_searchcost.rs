//! Reproduce the Sec. 12 search-cost comparison: MOpt's optimization time is
//! roughly independent of the operator's size, while an auto-tuner's time per
//! trial grows with the operator because every trial executes the candidate
//! (here: simulates it).
//!
//! Usage: exp_searchcost [--trials N] [--full] [--ops Y0,Y23]

use conv_spec::MachineModel;
use mopt_bench::{format_table, searchcost_comparison, ExperimentScale};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut trials = 16;
    let mut scale = ExperimentScale::quick();
    let mut ops: Vec<String> = vec!["Y0".into(), "Y23".into()];
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trials" => {
                trials = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(trials);
                i += 1;
            }
            "--full" => scale = ExperimentScale::Full,
            "--ops" => {
                if let Some(v) = argv.get(i + 1) {
                    ops = v.split(',').map(|s| s.to_string()).collect();
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let machine = MachineModel::i7_9700k();
    let rows = searchcost_comparison(&machine, scale, trials, &ops);
    println!("== Sec. 12 — search cost: MOpt vs auto-tuning ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}s", r.mopt_seconds),
                format!("{:.2}s", r.tuner_seconds),
                r.tuner_trials.to_string(),
            ]
        })
        .collect();
    println!("{}", format_table(&["Operator", "MOpt search", "Tuner search", "trials"], &table));
    println!("(paper: MOpt 9 s for Yolo stage 0 vs 23 s for stage 23; TVM 1 min vs 109 min for 1000 trials)");
}
