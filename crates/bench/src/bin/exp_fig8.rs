//! Reproduce Figure 8: the same comparison as Figure 7 on the i9-10980XE
//! (CascadeLake, AVX-512, 16 threads) machine model.
//!
//! Usage: exp_fig8 [--trials N] [--full] [--ops Y0,R9,...]

use conv_spec::MachineModel;
use mopt_bench::{fig7_performance_comparison, format_table, geomean, ExperimentScale};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut trials = 24;
    let mut scale = ExperimentScale::quick();
    let mut ops: Option<Vec<String>> = None;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trials" => {
                trials = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(trials);
                i += 1;
            }
            "--full" => scale = ExperimentScale::Full,
            "--ops" => {
                ops = argv.get(i + 1).map(|v| v.split(',').map(|s| s.to_string()).collect());
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let machine = MachineModel::i9_10980xe();
    let rows = fig7_performance_comparison(&machine, scale, trials, ops.as_deref());
    println!(
        "== Figure 8 — i9-10980XE (16 threads) — performance relative to the AutoTVM-like tuner =="
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}", r.tvm_like_gflops),
                format!("{:.2}x", r.onednn_vs_tvm()),
                format!("{:.2}x", r.mopt1_vs_tvm()),
                format!("{:.2}x", r.mopt5_gflops / r.tvm_like_gflops.max(1e-12)),
                format!("{:.1}", r.mopt1_gflops),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Operator", "TVM-like GF", "oneDNN/TVM", "MOpt-1/TVM", "MOpt-5/TVM", "MOpt-1 GF"],
            &table
        )
    );
    let mopt_vs_tvm: Vec<f64> = rows.iter().map(|r| r.mopt1_vs_tvm()).collect();
    let mopt_vs_dnn: Vec<f64> = rows.iter().map(|r| r.mopt1_vs_onednn()).collect();
    println!("geomean MOpt-1 / TVM-like   : {:.2}x", geomean(&mopt_vs_tvm));
    println!("geomean MOpt-1 / oneDNN-like: {:.2}x", geomean(&mopt_vs_dnn));
    println!("(paper, i9-10980XE: MOpt vs TVM 1.53–1.84x, MOpt vs oneDNN 1.08–1.26x geomean)");
}
