//! Reproduce Figure 6: model-predicted rank ordering versus measured
//! performance and per-level data-movement counters for three representative
//! operators (Resnet9, Mobnet2, Yolo5 in the paper).
//!
//! Usage: exp_fig6 [--samples N] [--full] [--ops R9,M2,Y5]

use conv_spec::MachineModel;
use mopt_bench::{fig6_rank_correlation, format_table, ExperimentScale};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut samples = 40;
    let mut scale = ExperimentScale::quick();
    let mut ops: Vec<String> = vec!["R9".into(), "M2".into(), "Y5".into()];
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--samples" => {
                samples = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(samples);
                i += 1;
            }
            "--full" => scale = ExperimentScale::Full,
            "--ops" => {
                if let Some(v) = argv.get(i + 1) {
                    ops = v.split(',').map(|s| s.to_string()).collect();
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    let machine = MachineModel::i7_9700k();
    let reports = fig6_rank_correlation(&machine, scale, samples, &ops);
    println!("== Figure 6 — rank ordering of model prediction vs measurement ==");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}", r.performance_correlation),
                format!("{:.2}", r.volume_correlations[0]),
                format!("{:.2}", r.volume_correlations[1]),
                format!("{:.2}", r.volume_correlations[2]),
                format!("{:.2}", r.volume_correlations[3]),
                format!("{}", r.predicted_bottleneck),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Operator", "perf corr", "Reg corr", "L1 corr", "L2 corr", "L3 corr", "bottleneck"],
            &rows
        )
    );
    println!(
        "(performance correlation is negative: lower predicted cost = higher measured GFLOPS;"
    );
    println!(" the paper reports strong correlation for the predicted bottleneck resource)");

    for r in &reports {
        println!(
            "\n-- {}: configurations ordered by predicted performance (best first) --",
            r.name
        );
        println!("{:>6}  {:>14}  {:>12}", "rank", "pred. cost", "meas. GFLOPS");
        for (i, (cost, gflops)) in r.ordered_points.iter().enumerate() {
            println!("{:>6}  {:>14.3e}  {:>12.2}", i + 1, cost, gflops);
        }
    }
}
