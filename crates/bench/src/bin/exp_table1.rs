//! Reproduce Table 1: the configurations of the 32 conv2d benchmark
//! operators (Yolo-9000, ResNet-18, MobileNet).

use conv_spec::benchmarks;
use mopt_bench::format_table;

fn main() {
    for suite in conv_spec::BenchmarkSuite::ALL {
        println!("== Table 1 — {suite} ==");
        let rows: Vec<Vec<String>> = benchmarks::suite(suite)
            .iter()
            .map(|op| {
                vec![
                    op.name.clone(),
                    op.shape.k.to_string(),
                    op.shape.c.to_string(),
                    op.shape.input_h().to_string(),
                    format!("{}", op.shape.r),
                    op.shape.stride.to_string(),
                    format!("{:.2}", op.shape.flops() as f64 / 1e9),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(&["Layer", "K", "C", "H/W(in)", "R/S", "stride", "GFLOP"], &rows)
        );
    }
}
