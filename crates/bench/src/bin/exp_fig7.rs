//! Reproduce Figure 7: performance of MOpt-1, MOpt-5 and the oneDNN-like
//! library baseline relative to an AutoTVM-like auto-tuner, for all 32
//! operators, on the i7-9700K machine model (8 threads).
//!
//! Usage: exp_fig7 [--trials N] [--full] [--ops Y0,R9,...]

use conv_spec::MachineModel;
use mopt_bench::{fig7_performance_comparison, format_table, geomean, ExperimentScale, Fig7Row};

fn main() {
    run(MachineModel::i7_9700k(), "Figure 7 — i7-9700K (8 threads)");
}

/// Shared driver used by both exp_fig7 and exp_fig8.
pub fn run(machine: MachineModel, title: &str) {
    let argv: Vec<String> = std::env::args().collect();
    let mut trials = 24;
    let mut scale = ExperimentScale::quick();
    let mut ops = None;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trials" => {
                trials = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(trials);
                i += 1;
            }
            "--full" => scale = ExperimentScale::Full,
            "--ops" => {
                ops = argv
                    .get(i + 1)
                    .map(|v| v.split(',').map(|s| s.to_string()).collect::<Vec<_>>());
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let rows = fig7_performance_comparison(&machine, scale, trials, ops.as_deref());
    print_rows(title, trials, &rows);
}

fn print_rows(title: &str, trials: usize, rows: &[Fig7Row]) {
    println!("== {title} — performance relative to the AutoTVM-like tuner ({trials} trials) ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}", r.tvm_like_gflops),
                format!("{:.2}x", r.onednn_vs_tvm()),
                format!("{:.2}x", r.mopt1_vs_tvm()),
                format!("{:.2}x", r.mopt5_gflops / r.tvm_like_gflops.max(1e-12)),
                format!("{:.1}", r.mopt1_gflops),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Operator", "TVM-like GF", "oneDNN/TVM", "MOpt-1/TVM", "MOpt-5/TVM", "MOpt-1 GF"],
            &table
        )
    );
    let mopt_vs_tvm: Vec<f64> = rows.iter().map(|r| r.mopt1_vs_tvm()).collect();
    let mopt_vs_dnn: Vec<f64> = rows.iter().map(|r| r.mopt1_vs_onednn()).collect();
    let mopt5_vs_tvm: Vec<f64> =
        rows.iter().map(|r| r.mopt5_gflops / r.tvm_like_gflops.max(1e-12)).collect();
    println!("geomean MOpt-1 / TVM-like   : {:.2}x", geomean(&mopt_vs_tvm));
    println!("geomean MOpt-5 / TVM-like   : {:.2}x", geomean(&mopt5_vs_tvm));
    println!("geomean MOpt-1 / oneDNN-like: {:.2}x", geomean(&mopt_vs_dnn));
    println!("(paper, i7-9700K: MOpt vs TVM 1.40–1.73x, MOpt vs oneDNN 1.16–1.37x geomean)");
}
