//! Reproduce Figure 5: model-prediction loss of performance (top-1/2/5)
//! against the best of a uniformly sampled set of tile configurations, for
//! every conv2d operator of MobileNet, Yolo-9000 and ResNet-18.
//!
//! Usage:
//!   exp_fig5 [--samples N] [--full] [--ops Y0,R9,...]
//!
//! `--full` uses the unscaled Table-1 shapes (slow); the default uses
//! structure-preserving scaled shapes so the experiment finishes in minutes.

use conv_spec::MachineModel;
use mopt_bench::{fig5_model_loss, format_table, ExperimentScale};

fn main() {
    let args = Args::parse();
    let machine = MachineModel::i7_9700k();
    let rows = fig5_model_loss(&machine, args.scale, args.samples, args.ops.as_deref());
    println!(
        "== Figure 5 — model-prediction loss over {} sampled configurations ({}) ==",
        args.samples,
        match args.scale {
            ExperimentScale::Full => "full Table-1 shapes".to_string(),
            ExperimentScale::Scaled { hw, ch } => format!("scaled shapes hw<={hw} ch<={ch}"),
        }
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}%", r.top1_loss * 100.0),
                format!("{:.1}%", r.top2_loss * 100.0),
                format!("{:.1}%", r.top5_loss * 100.0),
                format!("{:.2}", r.rank_correlation),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Operator", "Top-1 loss", "Top-2 loss", "Top-5 loss", "rank corr"], &table)
    );
    let worst_top5 = rows.iter().map(|r| r.top5_loss).fold(0.0, f64::max);
    let worst_top1 = rows.iter().map(|r| r.top1_loss).fold(0.0, f64::max);
    println!(
        "worst top-1 loss: {:.1}%   worst top-5 loss: {:.1}%",
        worst_top1 * 100.0,
        worst_top5 * 100.0
    );
    println!("(paper: top-1 loss < 4.5% on all 32 operators, < 3% on 30 of 32)");
}

struct Args {
    samples: usize,
    scale: ExperimentScale,
    ops: Option<Vec<String>>,
}

impl Args {
    fn parse() -> Self {
        let mut samples = 40;
        let mut scale = ExperimentScale::quick();
        let mut ops = None;
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--samples" => {
                    samples = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(samples);
                    i += 1;
                }
                "--full" => scale = ExperimentScale::Full,
                "--ops" => {
                    ops = argv.get(i + 1).map(|v| v.split(',').map(|s| s.to_string()).collect());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        Args { samples, scale, ops }
    }
}
