//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Sec. 9 and 10), plus ablations.
//!
//! Each `exp_*` binary in `src/bin/` is a thin wrapper over a function in
//! this library so the experiment logic is unit-testable. All experiments
//! print plain-text tables whose rows correspond to the rows/series of the
//! paper's tables and figures.
//!
//! Because the original evaluation runs for ~96 hours on two specific Intel
//! CPUs, every experiment here accepts a scaling knob:
//!
//! * `scale` — caps the spatial/channel extents of the 32 benchmark
//!   operators so the experiments finish in minutes while preserving each
//!   operator's structure (kernel size, stride, channel ratio),
//! * `samples` / `trials` — number of sampled configurations (Fig. 5/6) and
//!   auto-tuner trials (Fig. 7/8; the paper uses 100 and 1000 respectively).
//!
//! Run with `--full` (where supported) to use the unscaled Table-1 shapes.

pub mod experiments;
pub mod report;

pub use experiments::{
    ablation_pruning, fig5_model_loss, fig6_rank_correlation, fig7_performance_comparison,
    searchcost_comparison, AblationRow, ExperimentScale, Fig5Row, Fig6Report, Fig7Row,
    SearchCostRow,
};
pub use report::{format_table, geomean};
