//! Reference (untiled, unoptimized) conv2d used as ground truth in tests and
//! as the correctness oracle for every optimized path.

use conv_spec::ConvShape;

use crate::tensor::Tensor4;

/// Direct seven-loop convolution, generalized over stride, dilation, and
/// channel groups:
/// `Out[n][k][h][w] += In[n][g·(C/G)+c][h*stride+r*dilation][w*stride+s*dilation] * Ker[k][c][r][s]`
/// where `g = k / (K/G)` is output channel `k`'s group and `c` runs over the
/// per-group reduction extent `C/G`. For dense shapes (`G == 1`,
/// `dilation == 1`) this is exactly the paper's loop nest, with an identical
/// floating-point evaluation order.
///
/// # Panics
///
/// Panics if the tensor dimensions do not match the shape.
pub fn conv2d_naive(shape: &ConvShape, input: &Tensor4, kernel: &Tensor4) -> Tensor4 {
    check_dims(shape, input, kernel);
    let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
    let cpg = shape.reduction_c();
    let kpg = shape.k_per_group().max(1);
    let (stride, dil) = (shape.stride, shape.dilation);
    for n in 0..shape.n {
        for k in 0..shape.k {
            let c_base = (k / kpg) * cpg;
            for c in 0..cpg {
                for r in 0..shape.r {
                    for s in 0..shape.s {
                        for h in 0..shape.h {
                            for w in 0..shape.w {
                                let x = input.at(
                                    n,
                                    c_base + c,
                                    h * stride + r * dil,
                                    w * stride + s * dil,
                                );
                                let kv = kernel.at(k, c, r, s);
                                *out.at_mut(n, k, h, w) += x * kv;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Validate that the input and kernel tensors have the dimensions implied by
/// `shape` (the kernel's channel dimension is the per-group reduction extent
/// `C/groups`).
///
/// # Panics
///
/// Panics with a descriptive message when a dimension mismatches.
pub fn check_dims(shape: &ConvShape, input: &Tensor4, kernel: &Tensor4) {
    assert_eq!(input.dims(), shape.input_dims(), "input tensor dimensions do not match the shape");
    assert_eq!(
        kernel.dims(),
        shape.kernel_dims(),
        "kernel tensor dimensions do not match the shape"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_copies_input() {
        // 1x1 kernel with value 1 and a single channel: output equals input.
        let shape = ConvShape::new(1, 1, 1, 1, 1, 4, 4, 1).unwrap();
        let input = Tensor4::random(1, 1, 4, 4, 3);
        let kernel = Tensor4::from_vec((1, 1, 1, 1), vec![1.0]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert!(out.allclose(&input, 1e-7));
    }

    #[test]
    fn averaging_kernel_on_constant_input() {
        // 3x3 kernel of ones over a constant input of 2.0 → every output is 18.
        let shape = ConvShape::new(1, 1, 1, 3, 3, 3, 3, 1).unwrap();
        let input = Tensor4::from_vec((1, 1, 5, 5), vec![2.0; 25]);
        let kernel = Tensor4::from_vec((1, 1, 3, 3), vec![1.0; 9]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert!(out.as_slice().iter().all(|&v| (v - 18.0).abs() < 1e-6));
    }

    #[test]
    fn stride_two_subsamples() {
        let shape = ConvShape::from_table1(1, 1, 5, 1, 2); // 1x1 kernel, stride 2, out 3x3
        let mut data = vec![0.0f32; 25];
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let input = Tensor4::from_vec((1, 1, 5, 5), data);
        let kernel = Tensor4::from_vec((1, 1, 1, 1), vec![1.0]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert_eq!(out.at(0, 0, 0, 0), 0.0);
        assert_eq!(out.at(0, 0, 0, 1), 2.0);
        assert_eq!(out.at(0, 0, 1, 0), 10.0);
        assert_eq!(out.at(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn multi_channel_accumulation() {
        // Two input channels, each contributing 1*input; output = sum of channels.
        let shape = ConvShape::new(1, 1, 2, 1, 1, 2, 2, 1).unwrap();
        let input =
            Tensor4::from_vec((1, 2, 2, 2), vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let kernel = Tensor4::from_vec((1, 2, 1, 1), vec![1.0, 1.0]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn depthwise_channels_stay_independent() {
        // Depthwise 1x1 kernel = per-channel scaling: channel i is scaled by
        // kernel[i] and never mixes with other channels.
        let shape = ConvShape::depthwise(2, 2, 1, 1);
        let input =
            Tensor4::from_vec((1, 2, 2, 2), vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let kernel = Tensor4::from_vec(shape.kernel_dims(), vec![2.0, 0.5]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert_eq!(out.as_slice(), &[2.0, 4.0, 6.0, 8.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn grouped_convolution_reduces_within_groups_only() {
        // 4 input channels, 2 output channels, 2 groups: output channel 0 sums
        // channels {0,1}, output channel 1 sums channels {2,3}.
        let shape = ConvShape::new_general(1, 2, 4, 1, 1, 1, 1, 1, 1, 2).unwrap();
        let input = Tensor4::from_vec((1, 4, 1, 1), vec![1.0, 2.0, 4.0, 8.0]);
        let kernel = Tensor4::from_vec(shape.kernel_dims(), vec![1.0, 1.0, 1.0, 1.0]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert_eq!(out.as_slice(), &[3.0, 12.0]);
    }

    #[test]
    fn dilation_samples_spread_input_pixels() {
        // A 2x2 kernel of ones with dilation 2 over a 3x3 input sums the four
        // corners of the image.
        let shape = ConvShape::new(1, 1, 1, 2, 2, 1, 1, 1).unwrap().with_dilation(2).unwrap();
        assert_eq!(shape.input_h(), 3);
        let data: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let input = Tensor4::from_vec((1, 1, 3, 3), data);
        let kernel = Tensor4::from_vec((1, 1, 2, 2), vec![1.0; 4]);
        let out = conv2d_naive(&shape, &input, &kernel);
        assert_eq!(out.as_slice(), &[0.0 + 2.0 + 6.0 + 8.0]);
    }

    #[test]
    #[should_panic(expected = "input tensor dimensions")]
    fn dimension_check_panics_on_mismatch() {
        let shape = ConvShape::new(1, 1, 1, 1, 1, 4, 4, 1).unwrap();
        let input = Tensor4::zeros(1, 1, 3, 3);
        let kernel = Tensor4::zeros(1, 1, 1, 1);
        let _ = conv2d_naive(&shape, &input, &kernel);
    }
}
