//! Tiled conv2d execution: the reproduction's substitute for the paper's
//! generated C code and x86 microkernel.
//!
//! The paper's MOpt tool emits C code with multi-level tile loops around a
//! hand-written assembly microkernel (Sec. 6), packs the kernel tensor into a
//! vector-friendly layout, and parallelizes non-reduction tile loops
//! (Sec. 7). This crate implements the same execution structure in Rust:
//!
//! * [`tensor::Tensor4`] — a dense NCHW 4-D tensor of `f32`,
//! * [`naive`] — the reference seven-loop convolution used as ground truth,
//! * [`im2col`] — an im2col + cache-blocked GEMM convolution (the substrate
//!   used by the oneDNN-like baseline in `baselines`),
//! * [`packing`] — the `[K,C,R,S] → [K/VecLen, C, R, S, VecLen]` kernel
//!   packing transform,
//! * [`microkernel`] — the register-tiled inner kernel (accumulators held in
//!   a small stack block), generic over logical input/output views, with a
//!   runtime-dispatched AVX2+FMA inner loop (`is_x86_feature_detected!`,
//!   overridable via `MOPT_FORCE_SCALAR`) that is ULP-bounded against the
//!   exact scalar reference path,
//! * [`tiled`] — the multi-level tiled executor driven by a
//!   [`conv_spec::TileConfig`] with thread-parallel outer loops,
//! * [`nchwc`] — the blocked-NCHWc executor: the same tile walk over
//!   `[N, C/c_block, H, W, c_block]` storage, bit-for-bit equal to the
//!   sequential [`tiled`] walk,
//! * [`partiled`] — the scoped-thread parallel executor partitioning the
//!   schedule's parallel axis (`k` or the `n·h` output rows) across worker
//!   threads, bit-for-bit equal to the sequential tile walk,
//! * [`fused`] — a fused depthwise + pointwise executor that consumes the
//!   intermediate tensor band-by-band in cache (bit-for-bit equal to the two
//!   naive convolutions run sequentially),
//! * [`measure`] — timing helpers (GFLOPS, repetitions, cache flushing),
//! * [`spec_exec`] — executors for the generalized problem IR
//!   ([`conv_spec::Spec`]): naive and tiled matmul (the tiled form shares the
//!   im2col GEMM inner loop bit-for-bit), max/avg pooling, and elementwise
//!   kernels.
//!
//! # Example
//!
//! ```
//! use conv_spec::ConvShape;
//! use conv_exec::{naive::conv2d_naive, tensor::Tensor4, tiled::TiledConv};
//! use conv_spec::TileConfig;
//!
//! let shape = ConvShape::new(1, 4, 3, 3, 3, 6, 6, 1)?;
//! let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 1);
//! let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 2);
//! let reference = conv2d_naive(&shape, &input, &kernel);
//! let tiled = TiledConv::new(shape, TileConfig::untiled(&shape), 1)?;
//! let out = tiled.run(&input, &kernel);
//! assert!(reference.allclose(&out, 1e-4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod fused;
pub mod im2col;
pub mod measure;
pub mod microkernel;
pub mod naive;
pub mod nchwc;
pub mod packing;
pub mod partiled;
pub mod spec_exec;
pub mod tensor;
pub mod tiled;

pub use fused::{pointwise_consumer, FusedDwPw};
pub use measure::{measure_gflops, MeasureOptions, Measurement};
pub use microkernel::{
    active_backend, detected_backend, force_scalar, run_microkernel_with_backend, InputView,
    OutputView, SimdBackend,
};
pub use nchwc::{BlockedTensor, NchwcConv};
pub use packing::PackedKernel;
pub use partiled::ParTiledConv;
pub use spec_exec::{
    elementwise_naive, elementwise_tiled, matmul_naive, matmul_tiled, pool2d_naive, pool2d_tiled,
};
pub use tensor::Tensor4;
pub use tiled::TiledConv;

/// Errors produced by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The tile configuration is inconsistent with the problem shape.
    InvalidConfig(String),
    /// Tensor dimensions do not match the problem shape.
    ShapeMismatch(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidConfig(msg) => write!(f, "invalid tile configuration: {msg}"),
            ExecError::ShapeMismatch(msg) => write!(f, "tensor shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}
