//! im2col + cache-blocked GEMM convolution.
//!
//! This is the classic library approach to convolution: expand the input into
//! a `(C·R·S) × (N·H·W)` column matrix, then compute
//! `Out = Ker_matrix × Col_matrix` with a blocked matrix multiplication. The
//! oneDNN-like baseline in the `baselines` crate drives this path with its
//! fixed blocking heuristics.

use conv_spec::ConvShape;

use crate::tensor::Tensor4;

/// Blocking parameters of the GEMM (`mc × kc` panels of A, `kc × nc` panels
/// of B, with an `mr × nr` register micro-tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Rows of the A panel kept in cache (output channels).
    pub mc: usize,
    /// Depth of the panels (reduction dimension `C·R·S`).
    pub kc: usize,
    /// Columns of the B panel kept in cache (output pixels).
    pub nc: usize,
    /// Register-tile rows.
    pub mr: usize,
    /// Register-tile columns.
    pub nr: usize,
}

impl Default for GemmBlocking {
    fn default() -> Self {
        GemmBlocking { mc: 64, kc: 128, nc: 256, mr: 4, nr: 8 }
    }
}

impl GemmBlocking {
    /// Clamp the blocking to the actual matrix dimensions.
    pub fn clamped(&self, m: usize, k: usize, n: usize) -> GemmBlocking {
        GemmBlocking {
            mc: self.mc.clamp(1, m.max(1)),
            kc: self.kc.clamp(1, k.max(1)),
            nc: self.nc.clamp(1, n.max(1)),
            mr: self.mr.clamp(1, m.max(1)),
            nr: self.nr.clamp(1, n.max(1)),
        }
    }
}

/// Expand the input tensor into the im2col matrix, stored row-major with
/// dimensions `(C·R·S) × (N·H·W)` — the dense (single-group) form. For
/// grouped shapes use [`im2col_group`], which expands one group's channel
/// band.
pub fn im2col(shape: &ConvShape, input: &Tensor4) -> Vec<f32> {
    assert_eq!(shape.groups, 1, "im2col expands dense shapes; use im2col_group");
    im2col_group(shape, input, 0)
}

/// Expand the channel band of group `g` into its im2col matrix, stored
/// row-major with dimensions `((C/G)·R·S) × (N·H·W)`, honouring stride and
/// dilation.
pub fn im2col_group(shape: &ConvShape, input: &Tensor4, g: usize) -> Vec<f32> {
    let cpg = shape.reduction_c();
    let rows = cpg * shape.r * shape.s;
    let cols = shape.n * shape.h * shape.w;
    let c_base = g * cpg;
    let dil = shape.dilation;
    let mut col = vec![0.0f32; rows * cols];
    for c in 0..cpg {
        for r in 0..shape.r {
            for s in 0..shape.s {
                let row = (c * shape.r + r) * shape.s + s;
                for n in 0..shape.n {
                    for h in 0..shape.h {
                        for w in 0..shape.w {
                            let colidx = (n * shape.h + h) * shape.w + w;
                            col[row * cols + colidx] = input.at(
                                n,
                                c_base + c,
                                h * shape.stride + r * dil,
                                w * shape.stride + s * dil,
                            );
                        }
                    }
                }
            }
        }
    }
    col
}

/// Blocked GEMM: `C[m × n] += A[m × k] · B[k × n]` (all row-major).
pub fn blocked_gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    blocking: &GemmBlocking,
) {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    let blk = blocking.clamped(m, k, n);
    for jc in (0..n).step_by(blk.nc) {
        let nc = blk.nc.min(n - jc);
        for pc in (0..k).step_by(blk.kc) {
            let kc = blk.kc.min(k - pc);
            for ic in (0..m).step_by(blk.mc) {
                let mc = blk.mc.min(m - ic);
                // Macro-tile: mr × nr register micro-tiles.
                for ir in (0..mc).step_by(blk.mr) {
                    let mr = blk.mr.min(mc - ir);
                    for jr in (0..nc).step_by(blk.nr) {
                        let nr = blk.nr.min(nc - jr);
                        for i in 0..mr {
                            let row_a = (ic + ir + i) * k + pc;
                            let row_c = (ic + ir + i) * n + jc + jr;
                            for j in 0..nr {
                                let mut sum = 0.0f32;
                                for p in 0..kc {
                                    sum += a[row_a + p] * b[(pc + p) * n + jc + jr + j];
                                }
                                c[row_c + j] += sum;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Complete im2col convolution with a chosen blocking and thread count,
/// generalized over stride, dilation, and channel groups (one im2col + GEMM
/// per group; a dense shape is the single-group special case with an
/// unchanged execution path).
///
/// For dense shapes, threads split the output-channel dimension (rows of the
/// GEMM); for grouped shapes the independent groups themselves fan out
/// across the thread pool (within a group, `K/groups` rows — 1 for
/// depthwise — would give threads nothing to do).
pub fn conv2d_im2col(
    shape: &ConvShape,
    input: &Tensor4,
    kernel: &Tensor4,
    blocking: &GemmBlocking,
    threads: usize,
) -> Tensor4 {
    crate::naive::check_dims(shape, input, kernel);
    let m = shape.k_per_group(); // GEMM rows per group
    let kdim = shape.reduction_c() * shape.r * shape.s;
    let n = shape.n * shape.h * shape.w;
    let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);

    // NOTE: the output tensor is NCHW = (N, K, H, W); for N == 1 each group's
    // GEMM result (K/G × N·H·W) is already in the right layout. For N > 1 we
    // compute into a scratch (K/G × N·H·W) matrix and transpose back.
    if shape.groups == 1 {
        let threads = threads.clamp(1, m.max(1));
        let col = im2col_group(shape, input, 0);
        let a = kernel.as_slice(); // KCRS row-major is exactly (K) × (C·R·S)
        let mut c_mat = vec![0.0f32; m * n];
        if threads <= 1 {
            blocked_gemm(m, kdim, n, a, &col, &mut c_mat, blocking);
        } else {
            let rows_per = m.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, c_chunk) in c_mat.chunks_mut(rows_per * n).enumerate() {
                    let a_start = t * rows_per * kdim;
                    let rows = c_chunk.len() / n;
                    let a_chunk = &a[a_start..a_start + rows * kdim];
                    let col_ref = &col;
                    scope.spawn(move || {
                        blocked_gemm(rows, kdim, n, a_chunk, col_ref, c_chunk, blocking);
                    });
                }
            });
        }
        scatter_group(shape, &mut out, 0, &c_mat);
        return out;
    }

    // Grouped: each group's im2col + GEMM is independent, so groups are the
    // parallel unit. A work-stealing counter keeps the pool balanced when
    // groups outnumber threads.
    let workers = threads.clamp(1, shape.groups);
    if workers <= 1 {
        for g in 0..shape.groups {
            let col = im2col_group(shape, input, g);
            // KCRS row-major: group g's kernel rows are one contiguous block.
            let a = &kernel.as_slice()[g * m * kdim..(g + 1) * m * kdim];
            let mut c_mat = vec![0.0f32; m * n];
            blocked_gemm(m, kdim, n, a, &col, &mut c_mat, blocking);
            scatter_group(shape, &mut out, g, &c_mat);
        }
        return out;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<(usize, Vec<f32>)>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let g = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if g >= shape.groups {
                    break;
                }
                let col = im2col_group(shape, input, g);
                let a = &kernel.as_slice()[g * m * kdim..(g + 1) * m * kdim];
                let mut c_mat = vec![0.0f32; m * n];
                blocked_gemm(m, kdim, n, a, &col, &mut c_mat, blocking);
                results.lock().expect("im2col results poisoned").push((g, c_mat));
            });
        }
    });
    for (g, c_mat) in results.into_inner().expect("im2col results poisoned") {
        scatter_group(shape, &mut out, g, &c_mat);
    }
    out
}

/// Copy one group's GEMM result matrix (`K/G × N·H·W`, row-major) into the
/// NCHW output tensor.
fn scatter_group(shape: &ConvShape, out: &mut Tensor4, g: usize, c_mat: &[f32]) {
    let m = shape.k_per_group();
    let n = shape.n * shape.h * shape.w;
    for k_rel in 0..m {
        let k = g * m + k_rel;
        for nb in 0..shape.n {
            for h in 0..shape.h {
                for w in 0..shape.w {
                    let colidx = (nb * shape.h + h) * shape.w + w;
                    *out.at_mut(nb, k, h, w) = c_mat[k_rel * n + colidx];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::conv2d_naive;

    #[test]
    fn im2col_matrix_shape_and_values() {
        let shape = ConvShape::new(1, 1, 2, 2, 2, 2, 2, 1).unwrap();
        let input = Tensor4::random(1, 2, 3, 3, 5);
        let col = im2col(&shape, &input);
        assert_eq!(col.len(), (2 * 2 * 2) * (2 * 2));
        // Element (c=1, r=1, s=0) for output pixel (h=1, w=1) is input (1, 2, 1).
        let row = (2 + 1) * 2;
        let colidx = 2 + 1;
        assert_eq!(col[row * 4 + colidx], input.at(0, 1, 2, 1));
    }

    #[test]
    fn gemm_matches_reference_multiplication() {
        let (m, k, n) = (5, 7, 6);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        blocked_gemm(m, k, n, &a, &b, &mut c, &GemmBlocking { mc: 2, kc: 3, nc: 4, mr: 2, nr: 2 });
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|p| a[i * k + p] * b[p * n + j]).sum();
                assert!((c[i * n + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn im2col_conv_matches_naive() {
        for stride in [1, 2] {
            let shape = ConvShape::from_table1(6, 3, 9, 3, stride);
            let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 21);
            let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 22);
            let reference = conv2d_naive(&shape, &input, &kernel);
            let got = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 1);
            assert!(reference.allclose(&got, 1e-4), "stride {stride}");
        }
    }

    #[test]
    fn depthwise_and_grouped_im2col_match_naive() {
        for shape in [
            ConvShape::depthwise(8, 10, 3, 1),
            ConvShape::depthwise(6, 11, 3, 2),
            ConvShape::new_general(1, 6, 4, 3, 3, 7, 7, 1, 1, 2).unwrap(),
        ] {
            let (ni, ci, hi, wi) = shape.input_dims();
            let (kk, kc, kr, ks) = shape.kernel_dims();
            let input = Tensor4::random(ni, ci, hi, wi, 51);
            let kernel = Tensor4::random(kk, kc, kr, ks, 52);
            let reference = conv2d_naive(&shape, &input, &kernel);
            for threads in [1, 2] {
                let got = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), threads);
                assert!(reference.allclose(&got, 1e-4), "{shape} threads {threads}");
            }
        }
    }

    #[test]
    fn dilated_im2col_matches_naive() {
        for dilation in [2, 3] {
            let shape = ConvShape::from_table1_dilated(5, 3, 13, 3, 1, dilation);
            let (ni, ci, hi, wi) = shape.input_dims();
            let input = Tensor4::random(ni, ci, hi, wi, 61);
            let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 62);
            let reference = conv2d_naive(&shape, &input, &kernel);
            let got = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 1);
            assert!(reference.allclose(&got, 1e-4), "dilation {dilation}");
        }
    }

    #[test]
    fn multithreaded_gemm_matches_single_thread() {
        let shape = ConvShape::new(2, 8, 4, 3, 3, 6, 6, 1).unwrap();
        let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 31);
        let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 32);
        let single = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 1);
        let multi = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 4);
        assert!(single.allclose(&multi, 1e-5));
    }

    #[test]
    fn tiny_blocking_still_correct() {
        let shape = ConvShape::new(1, 3, 2, 1, 1, 4, 4, 1).unwrap();
        let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 41);
        let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 42);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let got = conv2d_im2col(
            &shape,
            &input,
            &kernel,
            &GemmBlocking { mc: 1, kc: 1, nc: 1, mr: 1, nr: 1 },
            2,
        );
        assert!(reference.allclose(&got, 1e-4));
    }

    #[test]
    fn blocking_clamp() {
        let b = GemmBlocking::default().clamped(2, 3, 4);
        assert_eq!(b.mc, 2);
        assert_eq!(b.kc, 3);
        assert_eq!(b.nc, 4);
    }
}
