//! Multi-level tiled conv2d executor.
//!
//! `TiledConv` realizes the loop structure the paper's code generator emits:
//! L3-, L2- and L1-level tile loops (in the configuration's permutation
//! order) around the register-tiled microkernel, with the kernel tensor
//! packed up front and the outer loops optionally parallelized across
//! threads along the output-channel (and batch) dimension so that threads
//! never write the same output element (Sec. 7 restricts parallelism to
//! non-reduction dimensions for the same reason).

use conv_spec::{ConvShape, LoopIndex, TileConfig, TileSizes, TilingLevel};

use crate::microkernel::{
    run_microkernel, run_microkernel_with_backend, InputView, KernelRegion, OutputView, SimdBackend,
};
use crate::packing::PackedKernel;
use crate::tensor::Tensor4;
use crate::ExecError;

/// A multi-level tiled convolution executor for one operator.
#[derive(Debug, Clone)]
pub struct TiledConv {
    shape: ConvShape,
    config: TileConfig,
    threads: usize,
    vec_len: usize,
    backend: Option<SimdBackend>,
}

impl TiledConv {
    /// Create an executor for `shape` with a tiling configuration and thread
    /// count. The configuration is normalized (tile nesting repaired) first.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidConfig`] if the normalized configuration
    /// still fails validation.
    pub fn new(shape: ConvShape, config: TileConfig, threads: usize) -> Result<Self, ExecError> {
        let config = config.normalized(&shape);
        config.validate(&shape).map_err(|e| ExecError::InvalidConfig(e.to_string()))?;
        Ok(TiledConv { shape, config, threads: threads.max(1), vec_len: 8, backend: None })
    }

    /// Set the SIMD vector length used for kernel packing (8 for AVX2-class,
    /// 16 for AVX-512-class machines).
    pub fn with_vec_len(mut self, vec_len: usize) -> Self {
        self.vec_len = vec_len.max(1);
        self
    }

    /// Pin the microkernel inner-loop backend instead of letting the runtime
    /// dispatcher choose (benchmarks compare backends; tests prove
    /// scalar/SIMD equivalence in one process).
    pub fn with_backend(mut self, backend: SimdBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The problem shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The (normalized) tiling configuration.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }

    /// The SIMD vector length used for kernel packing.
    pub(crate) fn vec_len(&self) -> usize {
        self.vec_len
    }

    /// Run the convolution. The kernel is packed internally (packing time is
    /// part of the measured execution, as in the paper).
    pub fn run(&self, input: &Tensor4, kernel: &Tensor4) -> Tensor4 {
        crate::naive::check_dims(&self.shape, input, kernel);
        let packed = PackedKernel::pack(&self.shape, kernel, self.vec_len);
        self.run_packed(input, &packed)
    }

    /// Run the convolution with an already packed kernel.
    pub fn run_packed(&self, input: &Tensor4, packed: &PackedKernel) -> Tensor4 {
        let mut output = Tensor4::zeros(self.shape.n, self.shape.k, self.shape.h, self.shape.w);
        let threads = self.effective_threads();
        if threads <= 1 {
            let full = KernelRegion::full(&self.shape);
            self.execute_region(input, packed, &mut output, &full);
            return output;
        }

        // Parallelize along the output-channel dimension: each thread owns a
        // contiguous K range, whose output slice is a contiguous chunk of the
        // NCHW buffer when N == 1; for N > 1 each thread still owns disjoint
        // (n, k) slices because we split K only.
        let k_chunks = split_range(self.shape.k, threads);
        let plane = self.shape.h * self.shape.w;
        std::thread::scope(|scope| {
            let mut rest = output.as_mut_slice();
            let mut offset = 0usize;
            // For N == 1 chunks are contiguous; for N > 1 fall back to
            // per-thread buffers merged afterwards (handled below).
            if self.shape.n == 1 {
                for (k_lo, k_len) in &k_chunks {
                    let chunk_elems = k_len * plane;
                    let (chunk, tail) = rest.split_at_mut(chunk_elems);
                    rest = tail;
                    let k_lo = *k_lo;
                    let k_len = *k_len;
                    let shape = self.shape;
                    let this = &*self;
                    scope.spawn(move || {
                        let mut local =
                            Tensor4::from_vec((1, k_len, shape.h, shape.w), chunk.to_vec());
                        let region = KernelRegion {
                            n: (0, 1),
                            k: (k_lo, k_len),
                            c: (0, shape.reduction_c()),
                            r: (0, shape.r),
                            s: (0, shape.s),
                            h: (0, shape.h),
                            w: (0, shape.w),
                        };
                        // Execute into a view-local tensor, then copy back into
                        // the chunk (the region indexes absolute k, so we use a
                        // full-size scratch only for the owned K slice).
                        let mut scratch = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
                        this.execute_region(input, packed, &mut scratch, &region);
                        for k in 0..k_len {
                            for h in 0..shape.h {
                                for w in 0..shape.w {
                                    *local.at_mut(0, k, h, w) = scratch.at(0, k_lo + k, h, w);
                                }
                            }
                        }
                        chunk.copy_from_slice(local.as_slice());
                    });
                    offset += chunk_elems;
                }
                let _ = offset;
            }
        });

        if self.shape.n > 1 {
            // Batch > 1: split along N instead (always disjoint, not
            // necessarily contiguous) using per-thread scratch outputs.
            let mut output = Tensor4::zeros(self.shape.n, self.shape.k, self.shape.h, self.shape.w);
            let n_chunks = split_range(self.shape.n, threads);
            let partials: Vec<Tensor4> = std::thread::scope(|scope| {
                let handles: Vec<_> = n_chunks
                    .iter()
                    .map(|&(n_lo, n_len)| {
                        let shape = self.shape;
                        let this = &*self;
                        scope.spawn(move || {
                            let mut scratch = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
                            let region = KernelRegion {
                                n: (n_lo, n_len),
                                k: (0, shape.k),
                                c: (0, shape.reduction_c()),
                                r: (0, shape.r),
                                s: (0, shape.s),
                                h: (0, shape.h),
                                w: (0, shape.w),
                            };
                            this.execute_region(input, packed, &mut scratch, &region);
                            scratch
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
            });
            for (chunk, partial) in n_chunks.iter().zip(partials.iter()) {
                let (n_lo, n_len) = *chunk;
                for n in n_lo..n_lo + n_len {
                    for k in 0..self.shape.k {
                        for h in 0..self.shape.h {
                            for w in 0..self.shape.w {
                                *output.at_mut(n, k, h, w) = partial.at(n, k, h, w);
                            }
                        }
                    }
                }
            }
            return output;
        }
        output
    }

    fn effective_threads(&self) -> usize {
        let limit = if self.shape.n > 1 { self.shape.n } else { self.shape.k };
        self.threads.clamp(1, limit.max(1))
    }

    /// Execute the multi-level tile loops over an arbitrary base region.
    /// Shared with [`crate::ParTiledConv`], whose worker threads each run it
    /// over their slice of the output, and with [`crate::NchwcConv`], which
    /// runs it over blocked NCHWc views — the walk is generic over logical
    /// views so every storage layout goes through the identical arithmetic.
    pub(crate) fn execute_region<I: InputView, O: OutputView>(
        &self,
        input: &I,
        packed: &PackedKernel,
        output: &mut O,
        base: &KernelRegion,
    ) {
        // Levels from outermost to innermost: L3, L2, L1, Register.
        let chain = [
            *self.config.level(TilingLevel::L3),
            *self.config.level(TilingLevel::L2),
            *self.config.level(TilingLevel::L1),
            *self.config.level(TilingLevel::Register),
        ];
        self.walk_level(&chain, input, packed, output, base);
    }

    fn walk_level<I: InputView, O: OutputView>(
        &self,
        chain: &[TileSizes],
        input: &I,
        packed: &PackedKernel,
        output: &mut O,
        region: &KernelRegion,
    ) {
        match chain.split_first() {
            None => match self.backend {
                None => run_microkernel(&self.shape, input, packed, output, region),
                Some(backend) => run_microkernel_with_backend(
                    &self.shape,
                    input,
                    packed,
                    output,
                    region,
                    backend,
                ),
            },
            Some((tile, rest)) => {
                self.walk_dims(tile, rest, 0, input, packed, output, region, &mut region.clone());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_dims<I: InputView, O: OutputView>(
        &self,
        tile: &TileSizes,
        rest: &[TileSizes],
        dim: usize,
        input: &I,
        packed: &PackedKernel,
        output: &mut O,
        enclosing: &KernelRegion,
        current: &mut KernelRegion,
    ) {
        if dim == 7 {
            let sub = *current;
            self.walk_level(rest, input, packed, output, &sub);
            return;
        }
        let idx = self.config.permutation.outer_to_inner()[dim];
        let (base, extent) = region_field(enclosing, idx);
        let t = tile.get(idx).max(1);
        let mut off = 0;
        while off < extent {
            let len = t.min(extent - off);
            set_region_field(current, idx, (base + off, len));
            self.walk_dims(tile, rest, dim + 1, input, packed, output, enclosing, current);
            off += t;
        }
        set_region_field(current, idx, (base, extent));
    }
}

fn region_field(r: &KernelRegion, idx: LoopIndex) -> (usize, usize) {
    match idx {
        LoopIndex::N => r.n,
        LoopIndex::K => r.k,
        LoopIndex::C => r.c,
        LoopIndex::R => r.r,
        LoopIndex::S => r.s,
        LoopIndex::H => r.h,
        LoopIndex::W => r.w,
    }
}

fn set_region_field(r: &mut KernelRegion, idx: LoopIndex, value: (usize, usize)) {
    match idx {
        LoopIndex::N => r.n = value,
        LoopIndex::K => r.k = value,
        LoopIndex::C => r.c = value,
        LoopIndex::R => r.r = value,
        LoopIndex::S => r.s = value,
        LoopIndex::H => r.h = value,
        LoopIndex::W => r.w = value,
    }
}

/// Split `extent` into at most `parts` contiguous `(start, len)` chunks.
pub(crate) fn split_range(extent: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, extent.max(1));
    let base = extent / parts;
    let rem = extent % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push((start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::conv2d_naive;
    use conv_spec::Permutation;

    fn reference(shape: &ConvShape, seed: u64) -> (Tensor4, Tensor4, Tensor4) {
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, seed);
        let kernel = Tensor4::random(kk, kc, kr, ks, seed + 1);
        let out = conv2d_naive(shape, &input, &kernel);
        (input, kernel, out)
    }

    fn config(
        shape: &ConvShape,
        perm: &str,
        reg: [usize; 7],
        l1: [usize; 7],
        l2: [usize; 7],
        l3: [usize; 7],
    ) -> TileConfig {
        TileConfig::new(
            Permutation::parse(perm).unwrap(),
            [
                TileSizes::from_array(reg),
                TileSizes::from_array(l1),
                TileSizes::from_array(l2),
                TileSizes::from_array(l3),
            ],
            TileSizes::ones(),
        )
        .normalized(shape)
    }

    #[test]
    fn untiled_matches_naive() {
        let shape = ConvShape::new(1, 5, 3, 3, 3, 7, 7, 1).unwrap();
        let (input, kernel, expected) = reference(&shape, 100);
        let conv = TiledConv::new(shape, TileConfig::untiled(&shape), 1).unwrap();
        let got = conv.run(&input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn multi_level_tiling_matches_naive_for_several_permutations() {
        let shape = ConvShape::new(1, 8, 6, 3, 3, 10, 10, 1).unwrap();
        let (input, kernel, expected) = reference(&shape, 200);
        for perm in ["kcrsnhw", "nkhwcrs", "nchrswk", "nkcrshw"] {
            let cfg = config(
                &shape,
                perm,
                [1, 4, 1, 1, 1, 1, 4],
                [1, 4, 3, 3, 3, 2, 5],
                [1, 8, 6, 3, 3, 5, 10],
                [1, 8, 6, 3, 3, 10, 10],
            );
            let conv = TiledConv::new(shape, cfg, 1).unwrap();
            let got = conv.run(&input, &kernel);
            assert!(
                expected.allclose(&got, 1e-4),
                "permutation {perm}: max diff {}",
                expected.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn partial_tiles_are_handled() {
        // Tile sizes that do not divide the extents.
        let shape = ConvShape::new(1, 7, 5, 3, 3, 9, 11, 1).unwrap();
        let (input, kernel, expected) = reference(&shape, 300);
        let cfg = config(
            &shape,
            "kcrsnhw",
            [1, 3, 1, 1, 1, 2, 4],
            [1, 5, 2, 2, 3, 4, 5],
            [1, 7, 4, 3, 3, 6, 8],
            [1, 7, 5, 3, 3, 9, 11],
        );
        let conv = TiledConv::new(shape, cfg, 1).unwrap();
        let got = conv.run(&input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn strided_convolution_matches_naive() {
        let shape = ConvShape::from_table1(6, 4, 11, 3, 2);
        let (input, kernel, expected) = reference(&shape, 400);
        let cfg = config(
            &shape,
            "kcrsnhw",
            [1, 2, 1, 1, 1, 1, 3],
            [1, 4, 2, 3, 3, 2, 3],
            [1, 6, 4, 3, 3, 3, 5],
            [1, 6, 4, 3, 3, 5, 5],
        );
        let conv = TiledConv::new(shape, cfg, 1).unwrap();
        let got = conv.run(&input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let shape = ConvShape::new(1, 16, 8, 3, 3, 12, 12, 1).unwrap();
        let (input, kernel, expected) = reference(&shape, 500);
        let cfg = config(
            &shape,
            "kcrsnhw",
            [1, 8, 1, 1, 1, 1, 4],
            [1, 8, 4, 3, 3, 4, 6],
            [1, 16, 8, 3, 3, 6, 12],
            [1, 16, 8, 3, 3, 12, 12],
        );
        for threads in [2, 3, 4] {
            let conv = TiledConv::new(shape, cfg.clone(), threads).unwrap();
            let got = conv.run(&input, &kernel);
            assert!(expected.allclose(&got, 1e-4), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_batched_execution_matches_naive() {
        let shape = ConvShape::new(3, 4, 3, 3, 3, 6, 6, 1).unwrap();
        let (input, kernel, expected) = reference(&shape, 600);
        let cfg = config(
            &shape,
            "nkhwcrs",
            [1, 4, 1, 1, 1, 2, 2],
            [1, 4, 3, 3, 3, 3, 3],
            [1, 4, 3, 3, 3, 6, 6],
            [3, 4, 3, 3, 3, 6, 6],
        );
        let conv = TiledConv::new(shape, cfg, 2).unwrap();
        let got = conv.run(&input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn depthwise_tiled_matches_naive_across_permutations_and_threads() {
        let shape = ConvShape::depthwise(12, 12, 3, 1);
        let (input, kernel, expected) = reference(&shape, 800);
        for perm in ["kcrsnhw", "nkhwcrs", "nchrswk"] {
            let cfg = config(
                &shape,
                perm,
                [1, 4, 1, 1, 1, 1, 4],
                [1, 6, 1, 3, 3, 2, 5],
                [1, 12, 1, 3, 3, 5, 10],
                [1, 12, 1, 3, 3, 10, 10],
            );
            for threads in [1, 3] {
                let conv = TiledConv::new(shape, cfg.clone(), threads).unwrap();
                let got = conv.run(&input, &kernel);
                assert!(
                    expected.allclose(&got, 1e-4),
                    "perm {perm} threads {threads}: max diff {}",
                    expected.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn grouped_tiled_matches_naive_with_group_straddling_k_tiles() {
        // K tile of 3 with k_per_group 2: tiles straddle group boundaries.
        let shape = ConvShape::new_general(1, 8, 8, 3, 3, 9, 9, 1, 1, 4).unwrap();
        let (input, kernel, expected) = reference(&shape, 900);
        let cfg = config(
            &shape,
            "kcrsnhw",
            [1, 3, 1, 1, 1, 1, 3],
            [1, 3, 2, 3, 3, 3, 5],
            [1, 8, 2, 3, 3, 6, 9],
            [1, 8, 2, 3, 3, 9, 9],
        );
        let conv = TiledConv::new(shape, cfg, 1).unwrap();
        let got = conv.run(&input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn dilated_and_strided_dilated_tiled_match_naive() {
        for (stride, dilation) in [(1, 2), (2, 2), (1, 3)] {
            let shape = ConvShape::from_table1_dilated(6, 4, 17, 3, stride, dilation);
            let (input, kernel, expected) = reference(&shape, 1000 + dilation as u64);
            let cfg = config(
                &shape,
                "kcrsnhw",
                [1, 2, 1, 1, 1, 1, 3],
                [1, 4, 2, 3, 3, 2, 3],
                [1, 6, 4, 3, 3, 3, 5],
                [1, 6, 4, 3, 3, 5, 5],
            );
            let conv = TiledConv::new(shape, cfg, 1).unwrap();
            let got = conv.run(&input, &kernel);
            assert!(
                expected.allclose(&got, 1e-4),
                "stride {stride} dilation {dilation}: max diff {}",
                expected.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn depthwise_dilated_combination_matches_naive() {
        let mut shape = ConvShape::from_table1_dilated(8, 8, 15, 3, 1, 2);
        shape.groups = 8;
        let (input, kernel, expected) = reference(&shape, 1100);
        let conv = TiledConv::new(shape, TileConfig::untiled(&shape), 2).unwrap();
        let got = conv.run(&input, &kernel);
        assert!(expected.allclose(&got, 1e-4));
    }

    #[test]
    fn vec_len_variants_are_equivalent() {
        let shape = ConvShape::new(1, 10, 4, 3, 3, 8, 8, 1).unwrap();
        let (input, kernel, expected) = reference(&shape, 700);
        let cfg = config(
            &shape,
            "kcrsnhw",
            [1, 5, 1, 1, 1, 1, 4],
            [1, 10, 2, 3, 3, 4, 4],
            [1, 10, 4, 3, 3, 8, 8],
            [1, 10, 4, 3, 3, 8, 8],
        );
        for vl in [4, 8, 16] {
            let conv = TiledConv::new(shape, cfg.clone(), 1).unwrap().with_vec_len(vl);
            let got = conv.run(&input, &kernel);
            assert!(expected.allclose(&got, 1e-4), "vec_len {vl}");
        }
    }

    #[test]
    fn split_range_covers_everything() {
        for (extent, parts) in [(10, 3), (7, 7), (5, 8), (1, 4), (16, 4)] {
            let chunks = split_range(extent, parts);
            let total: usize = chunks.iter().map(|(_, l)| l).sum();
            assert_eq!(total, extent);
            // Chunks are contiguous and ordered.
            let mut pos = 0;
            for (start, len) in chunks {
                assert_eq!(start, pos);
                pos += len;
            }
        }
    }

    #[test]
    fn accessors_and_validation() {
        let shape = ConvShape::new(1, 4, 2, 1, 1, 4, 4, 1).unwrap();
        let conv = TiledConv::new(shape, TileConfig::untiled(&shape), 2).unwrap();
        assert_eq!(conv.shape(), &shape);
        assert!(conv.config().validate(&shape).is_ok());
    }
}
