//! Executors for the generalized problem IR ([`Spec`]): matmul, pooling, and
//! elementwise kernels, each in a naive reference form and a tiled form.
//!
//! The tiled matmul is *the same code path* as the im2col convolution's GEMM
//! ([`blocked_gemm`]) — under the embedding `m→K, k→C, n→W` the kernel matrix
//! (KCRS row-major) is A, the im2col column matrix is B, and the NCHW output
//! of the embedded `1×m×1×n` conv is C row-major — so a matmul scheduled by
//! the optimizer and the conv it embeds into produce bit-for-bit identical
//! floats. Pooling executes the depthwise-conv access pattern with a
//! max/avg reduction; elementwise ops stream with an optional block size.

use conv_spec::{EwOp, PoolKind, Spec};

use crate::im2col::{blocked_gemm, GemmBlocking};
use crate::tensor::Tensor4;

/// Reference matmul: `C[m × n] = A[m × k] · B[k × n]`, all row-major.
pub fn matmul_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    c
}

/// Tiled matmul: `C[m × n] = A[m × k] · B[k × n]` with cache blocking.
///
/// Delegates to [`blocked_gemm`] — the identical inner loop the im2col
/// convolution path runs — so a `Spec::Matmul` and its embedded conv shape
/// produce bit-for-bit equal outputs (same additions in the same order).
pub fn matmul_tiled(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    blocking: &GemmBlocking,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    blocked_gemm(m, k, n, a, b, &mut c, blocking);
    c
}

/// Input dims `(n, channels, in_h, in_w)` of a pooling spec.
fn pool_input_dims(spec: &Spec) -> (usize, usize, usize, usize) {
    match *spec {
        Spec::Pool { n, channels, h, w, window, stride, .. } => {
            (n, channels, (h - 1) * stride + window, (w - 1) * stride + window)
        }
        _ => panic!("pool_input_dims requires a Spec::Pool"),
    }
}

/// Reference 2-D pooling over an NCHW input. Panics unless `spec` is a
/// [`Spec::Pool`] and the input has the matching dims.
pub fn pool2d_naive(spec: &Spec, input: &Tensor4) -> Tensor4 {
    pool2d_tiled(spec, input, usize::MAX, usize::MAX)
}

/// Tiled 2-D pooling: channels and output columns are processed in blocks of
/// `channel_block` / `w_block`. Per output element the window is reduced in
/// the same `r, s` order as the naive form, so the result is bit-for-bit
/// identical for every block size.
pub fn pool2d_tiled(spec: &Spec, input: &Tensor4, channel_block: usize, w_block: usize) -> Tensor4 {
    let (kind, n, channels, h, w, window, stride) = match *spec {
        Spec::Pool { kind, n, channels, h, w, window, stride } => {
            (kind, n, channels, h, w, window, stride)
        }
        _ => panic!("pool2d requires a Spec::Pool"),
    };
    assert_eq!(input.dims(), pool_input_dims(spec), "pool input dims mismatch");
    let cb = channel_block.clamp(1, channels);
    let wb = w_block.clamp(1, w);
    let mut out = Tensor4::zeros(n, channels, h, w);
    for nb in 0..n {
        for c0 in (0..channels).step_by(cb) {
            for w0 in (0..w).step_by(wb) {
                for c in c0..(c0 + cb).min(channels) {
                    for oh in 0..h {
                        for ow in w0..(w0 + wb).min(w) {
                            let mut acc = match kind {
                                PoolKind::Max => f32::NEG_INFINITY,
                                PoolKind::Avg => 0.0f32,
                            };
                            for r in 0..window {
                                for s in 0..window {
                                    let v = input.at(nb, c, oh * stride + r, ow * stride + s);
                                    match kind {
                                        PoolKind::Max => acc = acc.max(v),
                                        PoolKind::Avg => acc += v,
                                    }
                                }
                            }
                            if kind == PoolKind::Avg {
                                acc /= (window * window) as f32;
                            }
                            *out.at_mut(nb, c, oh, ow) = acc;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Apply one elementwise op. `b` supplies the second operand for binary ops
/// (`Add`, `Mul`) and must be `None` for unary ones. `stride` reads every
/// `stride`-th element of the operands (the `strided` form of
/// [`Spec::Elementwise`]); the output is always dense.
pub fn elementwise_naive(op: EwOp, a: &[f32], b: Option<&[f32]>, stride: usize) -> Vec<f32> {
    elementwise_tiled(op, a, b, stride, usize::MAX)
}

/// Blocked elementwise: the index space is walked in chunks of `block`
/// outputs. Element order inside a chunk matches the naive form, so results
/// are bit-for-bit identical for every block size.
pub fn elementwise_tiled(
    op: EwOp,
    a: &[f32],
    b: Option<&[f32]>,
    stride: usize,
    block: usize,
) -> Vec<f32> {
    assert!(stride >= 1, "stride must be at least 1");
    assert_eq!(op.arity() == 2, b.is_some(), "operand count must match op arity");
    if let Some(b) = b {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
    }
    let len = a.len().div_ceil(stride);
    let blk = block.clamp(1, len.max(1));
    let mut out = vec![0.0f32; len];
    for i0 in (0..len).step_by(blk) {
        for i in i0..(i0 + blk).min(len) {
            let x = a[i * stride];
            out[i] = match op {
                EwOp::Relu => x.max(0.0),
                EwOp::Add => x + b.expect("binary op")[i * stride],
                EwOp::Mul => x * b.expect("binary op")[i * stride],
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::conv2d_im2col;
    use conv_spec::DType;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 2000) as f32 - 1000.0) / 250.0
            })
            .collect()
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_embedded_im2col_conv() {
        let (m, n, k) = (12, 30, 17);
        let spec = Spec::Matmul { m, n, k, dtype: DType::F32 };
        let shape = spec.embedded_conv_shape();
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        // The kernel tensor (m, k, 1, 1) KCRS row-major IS A; the input
        // tensor (1, k, 1, n) NCHW IS B; the conv output (1, m, 1, n) IS C.
        let kernel = Tensor4::from_vec((m, k, 1, 1), a.clone());
        let input = Tensor4::from_vec((1, k, 1, n), b.clone());
        for blocking in
            [GemmBlocking::default(), GemmBlocking { mc: 5, kc: 3, nc: 7, mr: 2, nr: 3 }]
        {
            let via_conv = conv2d_im2col(&shape, &input, &kernel, &blocking, 1);
            let via_matmul = matmul_tiled(m, n, k, &a, &b, &blocking);
            // Bit-for-bit: same inner loop, same addition order.
            assert_eq!(via_conv.as_slice(), via_matmul.as_slice());
        }
    }

    #[test]
    fn naive_matmul_matches_tiled() {
        let (m, n, k) = (9, 11, 23);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let reference = matmul_naive(m, n, k, &a, &b);
        let tiled =
            matmul_tiled(m, n, k, &a, &b, &GemmBlocking { mc: 4, kc: 5, nc: 3, mr: 2, nr: 2 });
        for (x, y) in reference.iter().zip(tiled.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn pool_tiled_is_bit_identical_to_naive_for_every_block_size() {
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let spec = Spec::Pool { kind, n: 2, channels: 6, h: 5, w: 5, window: 3, stride: 2 };
            let (ni, ci, hi, wi) = pool_input_dims(&spec);
            let input = Tensor4::random(ni, ci, hi, wi, 91);
            let reference = pool2d_naive(&spec, &input);
            for (cb, wb) in [(1, 1), (2, 3), (4, 5), (6, 2)] {
                let tiled = pool2d_tiled(&spec, &input, cb, wb);
                assert_eq!(reference.as_slice(), tiled.as_slice(), "{kind:?} {cb}x{wb}");
            }
        }
    }

    #[test]
    fn avg_pool_equals_uniform_depthwise_conv() {
        // The pool embedding claims the depthwise-conv access pattern; for
        // avg pooling the arithmetic agrees too (uniform 1/win^2 kernel).
        let spec =
            Spec::Pool { kind: PoolKind::Avg, n: 1, channels: 4, h: 6, w: 6, window: 2, stride: 2 };
        let shape = spec.embedded_conv_shape();
        let (ni, ci, hi, wi) = pool_input_dims(&spec);
        let input = Tensor4::random(ni, ci, hi, wi, 17);
        let kernel = Tensor4::from_vec((4, 1, 2, 2), vec![0.25f32; 16]);
        let via_conv = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), 1);
        let pooled = pool2d_naive(&spec, &input);
        assert!(via_conv.allclose(&pooled, 1e-5));
    }

    #[test]
    fn elementwise_tiled_is_bit_identical_to_naive() {
        let a = fill(301, 12);
        let b = fill(301, 13);
        for stride in [1, 3] {
            for op in [EwOp::Relu, EwOp::Add, EwOp::Mul] {
                let second = if op.arity() == 2 { Some(b.as_slice()) } else { None };
                let reference = elementwise_naive(op, &a, second, stride);
                for block in [1, 7, 64, 1000] {
                    let tiled = elementwise_tiled(op, &a, second, stride, block);
                    assert_eq!(reference, tiled, "{op:?} stride {stride} block {block}");
                }
            }
        }
    }

    #[test]
    fn relu_clamps_negatives_and_strided_skips() {
        let a = vec![-1.0, 5.0, -2.0, 3.0];
        assert_eq!(elementwise_naive(EwOp::Relu, &a, None, 1), vec![0.0, 5.0, 0.0, 3.0]);
        assert_eq!(elementwise_naive(EwOp::Relu, &a, None, 2), vec![0.0, 0.0]);
    }
}
