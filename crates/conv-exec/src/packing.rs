//! Kernel packing (Sec. 6, "Packing").
//!
//! Efficient vectorization of the microkernel requires stride-1 access along
//! the vectorized output-channel dimension, but the benchmark layout is
//! `KCRS`, in which `K` is the slowest-varying dimension. The packing pass
//! rearranges the kernel into `[K/VecLen, C, R, S, VecLen]` (padding `K` up to
//! a multiple of the vector length with zeros) before the convolution. The
//! paper includes the packing time in all measurements; the measurement
//! helpers in [`crate::measure`] do the same.

use conv_spec::{layout::PackedKernelLayout, ConvShape};

use crate::tensor::Tensor4;

/// A kernel packed into the vector-friendly `[K/VecLen, C, R, S, VecLen]`
/// layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedKernel {
    layout: PackedKernelLayout,
    data: Vec<f32>,
}

impl PackedKernel {
    /// Pack a `KCRS` kernel tensor for a given SIMD vector length. The `C`
    /// dimension of the kernel tensor is the per-group reduction extent
    /// (`shape.reduction_c()`), i.e. 1 for a depthwise shape.
    ///
    /// # Panics
    ///
    /// Panics if the kernel dimensions do not match the shape or `vec_len`
    /// is zero.
    pub fn pack(shape: &ConvShape, kernel: &Tensor4, vec_len: usize) -> Self {
        assert!(vec_len > 0, "vector length must be positive");
        assert_eq!(
            kernel.dims(),
            shape.kernel_dims(),
            "kernel tensor dimensions do not match the shape"
        );
        let layout = PackedKernelLayout::new(shape, vec_len);
        let mut data = vec![0.0f32; layout.len()];
        for k in 0..shape.k {
            for c in 0..shape.reduction_c() {
                for r in 0..shape.r {
                    for s in 0..shape.s {
                        data[layout.offset(k, c, r, s)] = kernel.at(k, c, r, s);
                    }
                }
            }
        }
        PackedKernel { layout, data }
    }

    /// The packed layout description.
    pub fn layout(&self) -> &PackedKernelLayout {
        &self.layout
    }

    /// Vector length used for packing.
    pub fn vec_len(&self) -> usize {
        self.layout.vec_len
    }

    /// The packed buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Element for output channel `k`, input channel `c`, kernel position
    /// `(r, s)`. Padding lanes read as zero.
    #[inline]
    pub fn at(&self, k: usize, c: usize, r: usize, s: usize) -> f32 {
        self.data[self.layout.offset(k, c, r, s)]
    }

    /// The contiguous vector (of `vec_len` lanes) covering output channels
    /// `[group_base(k), group_base(k) + vec_len)` at `(c, r, s)`.
    #[inline]
    pub fn group(&self, k: usize, c: usize, r: usize, s: usize) -> &[f32] {
        let base = self.layout.group_base(k, c, r, s);
        &self.data[base..base + self.layout.vec_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(1, 10, 2, 3, 3, 4, 4, 1).unwrap()
    }

    #[test]
    fn pack_roundtrips_every_element() {
        let s = shape();
        let kernel = Tensor4::random(s.k, s.c, s.r, s.s, 9);
        let packed = PackedKernel::pack(&s, &kernel, 8);
        for k in 0..s.k {
            for c in 0..s.c {
                for r in 0..s.r {
                    for sx in 0..s.s {
                        assert_eq!(packed.at(k, c, r, sx), kernel.at(k, c, r, sx));
                    }
                }
            }
        }
    }

    #[test]
    fn padding_lanes_are_zero() {
        let s = shape(); // K = 10, vec 8 → lanes 10..16 of group 1 are padding
        let kernel = Tensor4::random(s.k, s.c, s.r, s.s, 1);
        let packed = PackedKernel::pack(&s, &kernel, 8);
        let group = packed.group(9, 1, 2, 2);
        assert_eq!(group.len(), 8);
        // Lanes 2..8 of the second group correspond to k = 10..16 (padding).
        for &lane in &group[2..8] {
            assert_eq!(lane, 0.0);
        }
    }

    #[test]
    fn group_is_contiguous_over_k() {
        let s = shape();
        let kernel = Tensor4::random(s.k, s.c, s.r, s.s, 3);
        let packed = PackedKernel::pack(&s, &kernel, 4);
        let group = packed.group(5, 0, 1, 1); // covers k = 4..8
        for (lane, expect_k) in (4..8).enumerate() {
            assert_eq!(group[lane], kernel.at(expect_k, 0, 1, 1));
        }
        assert_eq!(packed.vec_len(), 4);
        assert_eq!(packed.as_slice().len(), packed.layout().len());
    }

    #[test]
    #[should_panic(expected = "vector length must be positive")]
    fn zero_vec_len_panics() {
        let s = shape();
        let kernel = Tensor4::zeros(s.k, s.c, s.r, s.s);
        let _ = PackedKernel::pack(&s, &kernel, 0);
    }
}
