//! Execution-time measurement helpers.
//!
//! The paper measures each benchmark 50 times with a cache flush between
//! runs, discards the first run, and reports mean GFLOPS (Sec. 10 / A.5).
//! These helpers reproduce that protocol (with a configurable repetition
//! count so tests and CI stay fast).

use std::time::Instant;

/// Options for [`measure_gflops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureOptions {
    /// Number of timed repetitions.
    pub repetitions: usize,
    /// Number of untimed warm-up runs discarded before timing.
    pub warmup: usize,
    /// Size (in `f32` elements) of the buffer streamed between repetitions to
    /// evict the caches; `0` disables flushing.
    pub flush_elems: usize,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions { repetitions: 5, warmup: 1, flush_elems: 1 << 22 }
    }
}

impl MeasureOptions {
    /// The paper's measurement protocol: 50 repetitions, first run discarded,
    /// cache flushed between runs.
    pub fn paper_protocol() -> Self {
        MeasureOptions { repetitions: 50, warmup: 1, flush_elems: 1 << 24 }
    }

    /// A fast protocol for unit tests.
    pub fn quick() -> Self {
        MeasureOptions { repetitions: 2, warmup: 0, flush_elems: 0 }
    }
}

/// The result of a measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean wall-clock seconds per repetition.
    pub mean_seconds: f64,
    /// Minimum observed seconds.
    pub min_seconds: f64,
    /// Maximum observed seconds.
    pub max_seconds: f64,
    /// Mean achieved GFLOPS.
    pub gflops: f64,
    /// Half-width of the 95% confidence interval of the per-run GFLOPS, as
    /// reported in Figures 7 and 8.
    pub ci95_gflops: f64,
    /// Number of timed repetitions.
    pub repetitions: usize,
}

/// Measure the mean GFLOPS of repeatedly running `work`, where each run
/// performs `flops` floating-point operations.
pub fn measure_gflops(flops: f64, options: &MeasureOptions, mut work: impl FnMut()) -> Measurement {
    let mut flush_buffer: Vec<f32> = vec![0.0; options.flush_elems];
    for _ in 0..options.warmup {
        work();
    }
    let reps = options.repetitions.max(1);
    let mut times = Vec::with_capacity(reps);
    for i in 0..reps {
        if options.flush_elems > 0 {
            flush_cache(&mut flush_buffer, i as f32);
        }
        let start = Instant::now();
        work();
        times.push(start.elapsed().as_secs_f64());
    }
    summarize(flops, &times)
}

/// Build a [`Measurement`] from raw per-run times.
pub fn summarize(flops: f64, times: &[f64]) -> Measurement {
    assert!(!times.is_empty(), "at least one timed repetition is required");
    let n = times.len() as f64;
    let mean = times.iter().sum::<f64>() / n;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let gflops_runs: Vec<f64> = times.iter().map(|t| flops / t.max(1e-12) / 1e9).collect();
    let gmean = gflops_runs.iter().sum::<f64>() / n;
    let var = gflops_runs.iter().map(|g| (g - gmean).powi(2)).sum::<f64>() / n.max(1.0);
    let ci95 = 1.96 * (var / n).sqrt();
    Measurement {
        mean_seconds: mean,
        min_seconds: min,
        max_seconds: max,
        gflops: gmean,
        ci95_gflops: ci95,
        repetitions: times.len(),
    }
}

fn flush_cache(buffer: &mut [f32], salt: f32) {
    // A simple streaming pass with a data dependence so it is not optimized
    // away; large enough buffers evict every cache level.
    let mut acc = salt;
    for v in buffer.iter_mut() {
        *v += acc * 1e-7;
        acc += *v;
    }
    std::hint::black_box(acc);
}

/// Geometric mean of a slice of positive values (used for the speed-up
/// summaries of Sec. 10).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_computes_mean_min_max() {
        let m = summarize(2e9, &[1.0, 2.0, 3.0]);
        assert!((m.mean_seconds - 2.0).abs() < 1e-12);
        assert_eq!(m.min_seconds, 1.0);
        assert_eq!(m.max_seconds, 3.0);
        assert_eq!(m.repetitions, 3);
        // GFLOPS per run: 2, 1, 0.666... → mean ≈ 1.222
        assert!((m.gflops - (2.0 + 1.0 + 2.0 / 3.0) / 3.0).abs() < 1e-9);
        assert!(m.ci95_gflops > 0.0);
    }

    #[test]
    fn measure_runs_work_expected_number_of_times() {
        let mut count = 0;
        let opts = MeasureOptions { repetitions: 3, warmup: 2, flush_elems: 0 };
        let m = measure_gflops(1e6, &opts, || {
            count += 1;
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(count, 5);
        assert_eq!(m.repetitions, 3);
        assert!(m.gflops > 0.0);
        assert!(m.mean_seconds >= 0.0);
    }

    #[test]
    fn geometric_mean_properties() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn protocols_differ() {
        assert!(MeasureOptions::paper_protocol().repetitions > MeasureOptions::quick().repetitions);
        assert_eq!(MeasureOptions::default().warmup, 1);
    }

    #[test]
    #[should_panic(expected = "at least one timed repetition")]
    fn summarize_empty_panics() {
        let _ = summarize(1.0, &[]);
    }
}
