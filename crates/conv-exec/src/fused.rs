//! Fused depthwise + pointwise execution.
//!
//! The MobileNet inner pattern — a depthwise 3x3 stage followed by a
//! pointwise (1x1) projection — round-trips its intermediate tensor through
//! memory when the two convolutions run as separate schedules. This executor
//! fuses them: the depthwise stage is computed one *band* of output rows at a
//! time into a small scratch buffer, and the pointwise stage consumes the
//! band immediately, while it is still cache-resident. The full intermediate
//! tensor never exists.
//!
//! Correctness is exact, not approximate: within a band the per-element
//! accumulation order of both stages is identical to [`conv2d_naive`]'s, so
//! the fused output is **bit-for-bit equal** to running the two naive
//! convolutions sequentially (`assert_eq!` on the raw `f32` buffers, no
//! tolerance). Tests below enforce this on a randomized shape grid.

use conv_spec::ConvShape;

use crate::naive::{check_dims, conv2d_naive};
use crate::tensor::Tensor4;
use crate::ExecError;

/// A fused executor for one depthwise → pointwise pair.
#[derive(Debug, Clone)]
pub struct FusedDwPw {
    dw: ConvShape,
    pw: ConvShape,
    band_rows: usize,
    relu_intermediate: bool,
}

impl FusedDwPw {
    /// Create a fused executor.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidConfig`] unless `dw` is a depthwise
    /// convolution and `pw` is a dense stride-1, dilation-1 pointwise
    /// convolution, or [`ExecError::ShapeMismatch`] when `pw`'s input tensor
    /// is not exactly `dw`'s output tensor.
    pub fn new(dw: ConvShape, pw: ConvShape) -> Result<Self, ExecError> {
        if !dw.is_depthwise() {
            return Err(ExecError::InvalidConfig(format!(
                "producer {dw} is not a depthwise convolution"
            )));
        }
        if !pw.is_pointwise() || pw.stride != 1 || pw.dilation != 1 || pw.groups != 1 {
            return Err(ExecError::InvalidConfig(format!(
                "consumer {pw} is not a dense stride-1 pointwise convolution"
            )));
        }
        if pw.input_dims() != dw.output_dims() {
            return Err(ExecError::ShapeMismatch(format!(
                "pointwise input {:?} does not match depthwise output {:?}",
                pw.input_dims(),
                dw.output_dims()
            )));
        }
        Ok(FusedDwPw { dw, pw, band_rows: 4, relu_intermediate: false })
    }

    /// Set the number of intermediate rows computed (and consumed) per band.
    /// Values are clamped to at least 1; the default is 4.
    pub fn with_band_rows(mut self, rows: usize) -> Self {
        self.band_rows = rows.max(1);
        self
    }

    /// Apply a ReLU to the intermediate tensor before the pointwise stage
    /// consumes it (the MobileNet pattern puts an activation between the
    /// depthwise and projection stages). ReLU is exact in `f32`, so the
    /// bit-for-bit guarantee against the sequential reference is unaffected.
    pub fn with_relu_intermediate(mut self, relu: bool) -> Self {
        self.relu_intermediate = relu;
        self
    }

    /// The depthwise (producer) shape.
    pub fn depthwise_shape(&self) -> &ConvShape {
        &self.dw
    }

    /// The pointwise (consumer) shape.
    pub fn pointwise_shape(&self) -> &ConvShape {
        &self.pw
    }

    /// Elements of the intermediate tensor this fusion never materializes in
    /// full (only `band_rows` rows of it exist at a time).
    pub fn intermediate_elems(&self) -> usize {
        self.dw.output_elems()
    }

    /// Peak scratch-buffer size in elements (`C × band_rows × W`).
    pub fn band_elems(&self) -> usize {
        self.dw.k * self.band_rows.min(self.dw.h) * self.dw.w
    }

    /// Run the fused pair. `input` feeds the depthwise stage; the result is
    /// the pointwise stage's output.
    ///
    /// # Panics
    ///
    /// Panics if the tensor dimensions do not match the shapes.
    pub fn run(&self, input: &Tensor4, dw_kernel: &Tensor4, pw_kernel: &Tensor4) -> Tensor4 {
        self.check_inputs(input, dw_kernel, pw_kernel);
        let bh = self.band_rows.min(self.dw.h);
        let mut band = Tensor4::zeros(1, self.dw.k, bh, self.dw.w);
        let mut out = Tensor4::zeros(self.pw.n, self.pw.k, self.pw.h, self.pw.w);
        for (n, h0, rows) in self.bands() {
            self.run_band(input, dw_kernel, pw_kernel, &mut band, &mut out, n, h0, rows);
        }
        out
    }

    /// Run the fused pair with the bands partitioned across `threads` scoped
    /// worker threads. Bands are whole units of the sequential band grid and
    /// every band's computation is the very code [`run`](FusedDwPw::run)
    /// executes, so each output row is produced by exactly one thread with an
    /// identical accumulation sequence — the result is **bit-for-bit equal**
    /// to the sequential fused run (and hence to the two naive convolutions).
    /// Thread counts beyond the number of bands are capped.
    pub fn run_parallel(
        &self,
        input: &Tensor4,
        dw_kernel: &Tensor4,
        pw_kernel: &Tensor4,
        threads: usize,
    ) -> Tensor4 {
        self.check_inputs(input, dw_kernel, pw_kernel);
        let bands = self.bands();
        let chunks = crate::tiled::split_range(bands.len(), threads.max(1));
        if chunks.len() <= 1 {
            return self.run(input, dw_kernel, pw_kernel);
        }
        let bh = self.band_rows.min(self.dw.h);
        let partials: Vec<Tensor4> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(start, len)| {
                    let bands = &bands[start..start + len];
                    scope.spawn(move || {
                        let mut band = Tensor4::zeros(1, self.dw.k, bh, self.dw.w);
                        let mut out = Tensor4::zeros(self.pw.n, self.pw.k, self.pw.h, self.pw.w);
                        for &(n, h0, rows) in bands {
                            self.run_band(
                                input, dw_kernel, pw_kernel, &mut band, &mut out, n, h0, rows,
                            );
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });
        // Merge: each chunk owns disjoint (n, output-row) bands.
        let mut out = Tensor4::zeros(self.pw.n, self.pw.k, self.pw.h, self.pw.w);
        for (&(start, len), partial) in chunks.iter().zip(&partials) {
            for &(n, h0, rows) in &bands[start..start + len] {
                for k in 0..self.pw.k {
                    for h in h0..h0 + rows {
                        for w in 0..self.pw.w {
                            *out.at_mut(n, k, h, w) = partial.at(n, k, h, w);
                        }
                    }
                }
            }
        }
        out
    }

    /// The sequential band grid: `(n, h0, rows)` triples in execution order.
    fn bands(&self) -> Vec<(usize, usize, usize)> {
        let bh = self.band_rows.min(self.dw.h);
        let mut bands = Vec::new();
        for n in 0..self.dw.n {
            let mut h0 = 0;
            while h0 < self.dw.h {
                let rows = bh.min(self.dw.h - h0);
                bands.push((n, h0, rows));
                h0 += rows;
            }
        }
        bands
    }

    fn check_inputs(&self, input: &Tensor4, dw_kernel: &Tensor4, pw_kernel: &Tensor4) {
        check_dims(&self.dw, input, dw_kernel);
        assert_eq!(
            pw_kernel.dims(),
            self.pw.kernel_dims(),
            "pointwise kernel dimensions do not match the shape"
        );
    }

    /// Compute one band: the depthwise stage for output rows
    /// `[h0, h0 + rows)` of batch `n` into `band`, then the pointwise stage
    /// consuming it while hot. This is the single definition both the
    /// sequential and the parallel paths execute, so their per-element
    /// accumulation sequences are identical by construction.
    #[allow(clippy::too_many_arguments)]
    fn run_band(
        &self,
        input: &Tensor4,
        dw_kernel: &Tensor4,
        pw_kernel: &Tensor4,
        band: &mut Tensor4,
        out: &mut Tensor4,
        n: usize,
        h0: usize,
        rows: usize,
    ) {
        let (dw, pw) = (&self.dw, &self.pw);
        let channels = dw.k;
        let (stride, dil) = (dw.stride, dw.dilation);
        // Depthwise stage for rows [h0, h0 + rows): channel-major with
        // r, s ascending — the exact accumulation order of `conv2d_naive`
        // restricted to this band (k == c, C/G == 1).
        band.fill_zero();
        for c in 0..channels {
            for r in 0..dw.r {
                for s in 0..dw.s {
                    let kv = dw_kernel.at(c, 0, r, s);
                    for h in 0..rows {
                        for w in 0..dw.w {
                            let x =
                                input.at(n, c, (h0 + h) * stride + r * dil, w * stride + s * dil);
                            *band.at_mut(0, c, h, w) += x * kv;
                        }
                    }
                }
            }
        }
        if self.relu_intermediate {
            for v in band.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
        // Pointwise stage consumes the band while it is hot: for each output
        // element the reduction runs over c ascending, exactly as in
        // `conv2d_naive` (r == s == 1).
        for k in 0..pw.k {
            for c in 0..channels {
                let kv = pw_kernel.at(k, c, 0, 0);
                for h in 0..rows {
                    for w in 0..pw.w {
                        *out.at_mut(n, k, h0 + h, w) += band.at(0, c, h, w) * kv;
                    }
                }
            }
        }
    }

    /// The unfused reference: the two naive convolutions run sequentially
    /// with the intermediate tensor fully materialized. The fused [`run`]
    /// must equal this bit for bit.
    ///
    /// [`run`]: FusedDwPw::run
    pub fn run_sequential(
        &self,
        input: &Tensor4,
        dw_kernel: &Tensor4,
        pw_kernel: &Tensor4,
    ) -> Tensor4 {
        let mut intermediate = conv2d_naive(&self.dw, input, dw_kernel);
        if self.relu_intermediate {
            for v in intermediate.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
        conv2d_naive(&self.pw, &intermediate, pw_kernel)
    }
}

/// Derive the pointwise shape that consumes `dw`'s output and projects it to
/// `k_out` channels — a convenience for building fused pairs from benchmark
/// depthwise stages.
///
/// # Panics
///
/// Panics if `dw` is not depthwise (its output channel count feeds the
/// pointwise reduction).
pub fn pointwise_consumer(dw: &ConvShape, k_out: usize) -> ConvShape {
    assert!(dw.is_depthwise(), "producer {dw} is not depthwise");
    ConvShape::new(dw.n, k_out, dw.k, 1, 1, dw.h, dw.w, 1).expect("valid pointwise consumer")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_pair(dw: &ConvShape, pw: &ConvShape, seed: u64) -> (Tensor4, Tensor4, Tensor4) {
        let (ni, ci, hi, wi) = dw.input_dims();
        let (dk, dc, dr, ds) = dw.kernel_dims();
        let (pk, pc, pr, ps) = pw.kernel_dims();
        (
            Tensor4::random(ni, ci, hi, wi, seed),
            Tensor4::random(dk, dc, dr, ds, seed + 1),
            Tensor4::random(pk, pc, pr, ps, seed + 2),
        )
    }

    #[test]
    fn fused_is_bit_identical_to_sequential_naive() {
        let dw = ConvShape::depthwise(6, 12, 3, 1);
        let pw = pointwise_consumer(&dw, 4);
        let fused = FusedDwPw::new(dw, pw).unwrap();
        let (input, dwk, pwk) = random_pair(&dw, &pw, 42);
        let got = fused.run(&input, &dwk, &pwk);
        let reference = fused.run_sequential(&input, &dwk, &pwk);
        // Bit-for-bit: raw f32 equality, no tolerance.
        assert_eq!(got.as_slice(), reference.as_slice());
    }

    #[test]
    fn randomized_shape_grid_is_bit_identical_for_every_band_size() {
        // Channels × spatial × kernel × stride × dilation grid, several K
        // projections and band sizes, all exact.
        let mut case = 0u64;
        for channels in [3, 8] {
            for hw in [9, 14] {
                for (rs, stride, dilation) in [(3, 1, 1), (3, 2, 1), (3, 1, 2), (1, 1, 1)] {
                    let eff = (rs - 1) * dilation + 1;
                    if eff > hw {
                        continue;
                    }
                    let mut dw = ConvShape::from_table1_dilated(
                        channels, channels, hw, rs, stride, dilation,
                    );
                    dw.groups = channels;
                    for k_out in [2, 5] {
                        let pw = pointwise_consumer(&dw, k_out);
                        let (input, dwk, pwk) = random_pair(&dw, &pw, 1000 + case);
                        case += 1;
                        let reference =
                            FusedDwPw::new(dw, pw).unwrap().run_sequential(&input, &dwk, &pwk);
                        for band in [1, 2, 3, 64] {
                            let fused = FusedDwPw::new(dw, pw).unwrap().with_band_rows(band);
                            let got = fused.run(&input, &dwk, &pwk);
                            assert_eq!(
                                got.as_slice(),
                                reference.as_slice(),
                                "shape {dw} -> {pw}, band {band}"
                            );
                        }
                    }
                }
            }
        }
        assert!(case >= 10, "the grid should exercise a real spread of shapes");
    }

    #[test]
    fn parallel_bands_are_bit_identical_for_every_thread_count() {
        // Thread counts from 1 to well beyond the band count (h = 12,
        // band_rows = 2 → 6 bands per batch), with and without the ReLU.
        for (n, relu) in [(1, false), (2, true)] {
            let dw = ConvShape::new_general(n, 6, 6, 3, 3, 12, 12, 1, 1, 6).unwrap();
            let pw = ConvShape::new(n, 4, 6, 1, 1, 12, 12, 1).unwrap();
            let fused =
                FusedDwPw::new(dw, pw).unwrap().with_band_rows(2).with_relu_intermediate(relu);
            let (input, dwk, pwk) = random_pair(&dw, &pw, 4000 + n as u64);
            let expected = fused.run(&input, &dwk, &pwk);
            for threads in [1, 2, 3, 5, 64] {
                let got = fused.run_parallel(&input, &dwk, &pwk, threads);
                assert_eq!(
                    got.as_slice(),
                    expected.as_slice(),
                    "n {n}, relu {relu}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn relu_intermediate_is_bit_identical_and_changes_the_result() {
        let dw = ConvShape::depthwise(6, 12, 3, 1);
        let pw = pointwise_consumer(&dw, 4);
        let (input, dwk, pwk) = random_pair(&dw, &pw, 4242);
        let plain = FusedDwPw::new(dw, pw).unwrap();
        let relu = FusedDwPw::new(dw, pw).unwrap().with_relu_intermediate(true);
        let got = relu.run(&input, &dwk, &pwk);
        assert_eq!(got.as_slice(), relu.run_sequential(&input, &dwk, &pwk).as_slice());
        // The activation really took effect (random intermediates go negative).
        assert_ne!(got.as_slice(), plain.run(&input, &dwk, &pwk).as_slice());
    }

    #[test]
    fn batched_input_is_bit_identical() {
        let dw = ConvShape::new_general(2, 4, 4, 3, 3, 8, 8, 1, 1, 4).unwrap();
        let pw = ConvShape::new(2, 3, 4, 1, 1, 8, 8, 1).unwrap();
        let fused = FusedDwPw::new(dw, pw).unwrap().with_band_rows(3);
        let (input, dwk, pwk) = random_pair(&dw, &pw, 77);
        let got = fused.run(&input, &dwk, &pwk);
        let reference = fused.run_sequential(&input, &dwk, &pwk);
        assert_eq!(got.as_slice(), reference.as_slice());
    }

    #[test]
    fn constructor_rejects_non_fusable_pairs() {
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let dense = ConvShape::new(1, 8, 8, 3, 3, 8, 8, 1).unwrap();
        // Dense producer.
        assert!(FusedDwPw::new(dense, pointwise_consumer(&dw, 4)).is_err());
        // Non-pointwise consumer.
        let conv3 = ConvShape::new(1, 4, 8, 3, 3, dw.h - 2, dw.w - 2, 1).unwrap();
        assert!(FusedDwPw::new(dw, conv3).is_err());
        // Spatial mismatch.
        let wrong = ConvShape::new(1, 4, 8, 1, 1, dw.h - 1, dw.w, 1).unwrap();
        assert!(matches!(FusedDwPw::new(dw, wrong), Err(ExecError::ShapeMismatch(_))));
        // Strided pointwise consumer.
        let strided = ConvShape::new(1, 4, 8, 1, 1, dw.h / 2, dw.w / 2, 2).unwrap();
        assert!(FusedDwPw::new(dw, strided).is_err());
    }

    #[test]
    fn band_accounting() {
        let dw = ConvShape::depthwise(8, 12, 3, 1);
        let pw = pointwise_consumer(&dw, 4);
        let fused = FusedDwPw::new(dw, pw).unwrap().with_band_rows(2);
        assert_eq!(fused.intermediate_elems(), dw.output_elems());
        assert_eq!(fused.band_elems(), 8 * 2 * dw.w);
        assert!(fused.band_elems() < fused.intermediate_elems());
        assert_eq!(fused.depthwise_shape(), &dw);
        assert_eq!(fused.pointwise_shape(), &pw);
    }
}
