//! Blocked NCHWc executor.
//!
//! When the planner picks an `Nchwc { c_block }` layout, feature maps are
//! stored as `[N, C/c_block, H, W, c_block]`: a unit step along the channel
//! index stays inside a contiguous `c_block`-element lane group, which is what
//! the layout-aware cost model prices as a shorter-stride stream. The executor
//! here blocks the input, runs the *same* generic tile walk and microkernel as
//! [`crate::TiledConv`] over the blocked storage (the views only change how
//! offsets are computed, never the arithmetic or its order), and unblocks the
//! output — so its results are bit-for-bit identical to the scalar tiled
//! executor, and the packing steps it performs are exactly the one-time moves
//! the model's `move_cost` module charges for.

use conv_spec::{ConvShape, LayoutConfig, TensorLayout, TileConfig};

use crate::microkernel::{InputView, KernelRegion, OutputView};
use crate::packing::PackedKernel;
use crate::tensor::Tensor4;
use crate::tiled::TiledConv;
use crate::ExecError;

/// A dense 4-D feature map stored in blocked NCHWc order
/// (`[N, C/c_block, H, W, c_block]`, channels padded up to whole blocks).
///
/// Indexing is logical NCHW — the block decomposition is internal — so the
/// same microkernel code runs over [`Tensor4`] and `BlockedTensor` unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedTensor {
    dims: (usize, usize, usize, usize),
    layout: TensorLayout,
    data: Vec<f32>,
}

impl BlockedTensor {
    /// A zero-filled blocked tensor with logical NCHW extents.
    ///
    /// # Panics
    ///
    /// Panics if `c_block` is zero.
    pub fn zeros(dims: (usize, usize, usize, usize), c_block: usize) -> Self {
        assert!(c_block > 0, "c_block must be positive");
        let layout = TensorLayout::Nchwc { c_block };
        BlockedTensor { dims, layout, data: vec![0.0; layout.len(dims)] }
    }

    /// Pack a plain NCHW tensor into blocked storage. Channel padding lanes
    /// stay zero.
    pub fn from_nchw(src: &Tensor4, c_block: usize) -> Self {
        let dims = src.dims();
        let mut out = Self::zeros(dims, c_block);
        let (dn, dc, dh, dw) = dims;
        for n in 0..dn {
            for c in 0..dc {
                for h in 0..dh {
                    for w in 0..dw {
                        *out.at_mut(n, c, h, w) = src.at(n, c, h, w);
                    }
                }
            }
        }
        out
    }

    /// Unpack into a plain NCHW tensor (dropping channel padding lanes).
    pub fn to_nchw(&self) -> Tensor4 {
        let (dn, dc, dh, dw) = self.dims;
        let mut out = Tensor4::zeros(dn, dc, dh, dw);
        for n in 0..dn {
            for c in 0..dc {
                for h in 0..dh {
                    for w in 0..dw {
                        *out.at_mut(n, c, h, w) = self.at(n, c, h, w);
                    }
                }
            }
        }
        out
    }

    /// Logical NCHW extents.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        self.dims
    }

    /// The channel block size.
    pub fn c_block(&self) -> usize {
        match self.layout {
            TensorLayout::Nchwc { c_block } => c_block,
            _ => unreachable!("BlockedTensor always uses an Nchwc layout"),
        }
    }

    /// Element accessor (logical NCHW index).
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.layout.offset((n, c, h, w), self.dims)]
    }

    /// Mutable element accessor (logical NCHW index).
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let off = self.layout.offset((n, c, h, w), self.dims);
        &mut self.data[off]
    }

    /// The backing slice in blocked order (including padding lanes).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

impl InputView for BlockedTensor {
    #[inline(always)]
    fn value(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.at(n, c, h, w)
    }
}

impl OutputView for BlockedTensor {
    #[inline(always)]
    fn value(&self, n: usize, k: usize, h: usize, w: usize) -> f32 {
        self.at(n, k, h, w)
    }
    #[inline(always)]
    fn value_mut(&mut self, n: usize, k: usize, h: usize, w: usize) -> &mut f32 {
        self.at_mut(n, k, h, w)
    }
}

/// A multi-level tiled convolution executor over blocked NCHWc feature maps.
///
/// The tile walk (permutation, tile chain, microkernel) is shared with
/// [`TiledConv`]; only the storage of the input and output differs. Because
/// the generic views preserve the exact arithmetic order, `NchwcConv` is
/// bit-for-bit identical to the sequential `TiledConv` on every shape.
#[derive(Debug, Clone)]
pub struct NchwcConv {
    inner: TiledConv,
    layout: LayoutConfig,
}

impl NchwcConv {
    /// Create an executor for `shape`. The channel block and kernel packing
    /// width come from the configuration's layout axis; a configuration with
    /// default (NCHW) tensor layouts still executes, blocked with the kernel
    /// packing width.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidConfig`] if the normalized configuration
    /// fails validation.
    pub fn new(shape: ConvShape, config: TileConfig, threads: usize) -> Result<Self, ExecError> {
        let layout = config.layout;
        let inner = TiledConv::new(shape, config, threads)?.with_vec_len(vec_len_of(&layout));
        Ok(NchwcConv { inner, layout })
    }

    /// The problem shape.
    pub fn shape(&self) -> &ConvShape {
        self.inner.shape()
    }

    /// The layout the executor blocks its tensors into.
    pub fn layout(&self) -> LayoutConfig {
        self.layout
    }

    /// The channel block size used for feature maps.
    pub fn c_block(&self) -> usize {
        match self.layout.input {
            TensorLayout::Nchwc { c_block } => c_block,
            _ => vec_len_of(&self.layout),
        }
    }

    /// Run the convolution: block the input, pack the kernel, walk the tile
    /// loops over blocked storage, unblock the output. The layout transforms
    /// are part of the run, exactly like the one-time moves the model prices.
    pub fn run(&self, input: &Tensor4, kernel: &Tensor4) -> Tensor4 {
        crate::naive::check_dims(self.shape(), input, kernel);
        let shape = *self.shape();
        let c_block = self.c_block();
        let blocked_in = BlockedTensor::from_nchw(input, c_block);
        let packed = PackedKernel::pack(&shape, kernel, vec_len_of(&self.layout));
        let mut blocked_out = BlockedTensor::zeros((shape.n, shape.k, shape.h, shape.w), c_block);
        self.inner.execute_region(
            &blocked_in,
            &packed,
            &mut blocked_out,
            &KernelRegion::full(&shape),
        );
        blocked_out.to_nchw()
    }
}

/// Kernel packing width implied by a layout (the packed vector length, or the
/// AVX2 default of 8 when the kernel layout is plain KCRS).
fn vec_len_of(layout: &LayoutConfig) -> usize {
    match layout.kernel {
        conv_spec::KernelLayout::Packed { vec_len } => vec_len.max(1),
        conv_spec::KernelLayout::Kcrs => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::conv2d_naive;
    use conv_spec::{Permutation, TileSizes};

    fn blocked_config(shape: &ConvShape, c_block: usize) -> TileConfig {
        TileConfig::new(
            Permutation::parse("kcrsnhw").unwrap(),
            [
                TileSizes::from_array([1, 4, 1, 1, 1, 1, 4]),
                TileSizes::from_array([1, 8, 4, 3, 3, 3, 5]),
                TileSizes::from_array([1, 8, 8, 3, 3, 6, 9]),
                TileSizes::from_array([1, 16, 8, 3, 3, 9, 9]),
            ],
            TileSizes::ones(),
        )
        .normalized(shape)
        .with_layout(LayoutConfig::blocked(c_block))
    }

    #[test]
    fn blocked_tensor_round_trips_nchw() {
        let src = Tensor4::random(2, 5, 3, 4, 7);
        for c_block in [1, 2, 4, 8] {
            let blocked = BlockedTensor::from_nchw(&src, c_block);
            assert_eq!(blocked.c_block(), c_block);
            assert_eq!(blocked.to_nchw(), src);
            // Storage is padded up to whole channel blocks.
            assert_eq!(blocked.as_slice().len(), 2 * 5usize.div_ceil(c_block) * c_block * 3 * 4);
        }
    }

    #[test]
    fn blocked_channel_lanes_are_contiguous() {
        // With c_block = 4, channels 0..4 of one pixel occupy adjacent slots.
        let src = Tensor4::random(1, 4, 2, 2, 9);
        let blocked = BlockedTensor::from_nchw(&src, 4);
        let base = TensorLayout::Nchwc { c_block: 4 }.offset((0, 0, 1, 1), (1, 4, 2, 2));
        for lane in 0..4 {
            assert_eq!(blocked.as_slice()[base + lane], src.at(0, lane, 1, 1));
        }
    }

    #[test]
    fn nchwc_matches_tiled_bit_for_bit() {
        for &(stride, dilation, groups) in
            &[(1usize, 1usize, 1usize), (2, 1, 1), (1, 2, 1), (1, 1, 4), (2, 2, 2)]
        {
            let shape =
                ConvShape::new_general(2, 16, 8, 3, 3, 9, 9, stride, dilation, groups).unwrap();
            let (ni, ci, hi, wi) = shape.input_dims();
            let (kk, kc, kr, ks) = shape.kernel_dims();
            let input = Tensor4::random(ni, ci, hi, wi, 41);
            let kernel = Tensor4::random(kk, kc, kr, ks, 42);
            let cfg = blocked_config(&shape, 8);
            let reference = TiledConv::new(shape, cfg.clone(), 1).unwrap().run(&input, &kernel);
            let blocked = NchwcConv::new(shape, cfg, 1).unwrap().run(&input, &kernel);
            assert_eq!(
                reference.as_slice(),
                blocked.as_slice(),
                "stride {stride} dilation {dilation} groups {groups}"
            );
        }
    }

    #[test]
    fn nchwc_matches_naive_within_tolerance() {
        let shape = ConvShape::new(1, 12, 6, 3, 3, 8, 8, 1).unwrap();
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 51);
        let kernel = Tensor4::random(kk, kc, kr, ks, 52);
        let expected = conv2d_naive(&shape, &input, &kernel);
        for c_block in [2, 4, 8] {
            let got = NchwcConv::new(shape, blocked_config(&shape, c_block), 1)
                .unwrap()
                .run(&input, &kernel);
            assert!(expected.allclose(&got, 1e-4), "c_block {c_block}");
        }
    }

    #[test]
    fn default_layout_config_still_executes_blocked() {
        let shape = ConvShape::new(1, 6, 4, 3, 3, 6, 6, 1).unwrap();
        let cfg = TileConfig::untiled(&shape);
        let conv = NchwcConv::new(shape, cfg.clone(), 1).unwrap();
        assert_eq!(conv.c_block(), 8);
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 61);
        let kernel = Tensor4::random(kk, kc, kr, ks, 62);
        let reference = TiledConv::new(shape, cfg, 1).unwrap().run(&input, &kernel);
        assert_eq!(reference.as_slice(), conv.run(&input, &kernel).as_slice());
    }
}
