//! Scoped-thread parallel tiled conv2d executor.
//!
//! [`ParTiledConv`] partitions the output across worker threads and runs
//! [`TiledConv`]'s multi-level tile walk over each slice on its own
//! `std::thread` (scoped, so tensors are borrowed, never copied to the
//! workers). A configuration carrying certified parallel factors
//! ([`conv_spec::TileConfig::parallel`]) is executed exactly as the
//! multicore model priced it — the factors' cross-product grid of output
//! slices; factor-less configurations split the executor's
//! [`conv_spec::ParallelAxis`] (the `k` output channels or the `n·h` output
//! rows) into contiguous per-thread chunks. Threads own disjoint output
//! regions; the reduction dimensions (`c`, `r`, `s`) are never partitioned.
//!
//! Correctness is exact, not approximate: a slice along a non-reduction
//! dimension leaves every output element's accumulation sequence — the order
//! in which the `c`/`r`/`s` tile loops and the microkernel's inner reduction
//! visit its partial products — untouched, so the parallel result is
//! **bit-for-bit equal** to the sequential [`TiledConv`] run of the same
//! configuration (`assert_eq!` on the raw `f32` buffers, no tolerance).
//! Tests here and in `tests/multicore_parallel.rs` enforce this across a
//! randomized shape × stride × dilation × groups × thread-count grid,
//! including thread counts exceeding the partitioned extent.

use conv_spec::{ConvShape, ParallelAxis, TileConfig};

use crate::microkernel::KernelRegion;
use crate::packing::PackedKernel;
use crate::tensor::Tensor4;
use crate::tiled::{split_range, TiledConv};
use crate::ExecError;

/// A parallel multi-level tiled convolution executor for one operator.
#[derive(Debug, Clone)]
pub struct ParTiledConv {
    seq: TiledConv,
    threads: usize,
    axis: ParallelAxis,
}

impl ParTiledConv {
    /// Create an executor for `shape` with a tiling configuration and thread
    /// count. The parallel axis defaults to the one the configuration's
    /// per-dimension factors encode ([`TileConfig::parallel_axis`]); the
    /// configuration is normalized (tile nesting repaired) first.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidConfig`] if the normalized configuration
    /// still fails validation.
    pub fn new(shape: ConvShape, config: TileConfig, threads: usize) -> Result<Self, ExecError> {
        let axis = config.parallel_axis();
        let seq = TiledConv::new(shape, config, 1)?;
        Ok(ParTiledConv { seq, threads: threads.max(1), axis })
    }

    /// Override the parallel axis used by the factor-less fallback. A
    /// configuration carrying certified parallel factors is always executed
    /// along those factors (see [`Self::run_packed`]); the axis only decides
    /// how configurations *without* factors are split across `threads`.
    pub fn with_axis(mut self, axis: ParallelAxis) -> Self {
        self.axis = axis;
        self
    }

    /// Set the SIMD vector length used for kernel packing.
    pub fn with_vec_len(mut self, vec_len: usize) -> Self {
        self.seq = self.seq.clone().with_vec_len(vec_len);
        self
    }

    /// The problem shape.
    pub fn shape(&self) -> &ConvShape {
        self.seq.shape()
    }

    /// The (normalized) tiling configuration.
    pub fn config(&self) -> &TileConfig {
        self.seq.config()
    }

    /// The partitioned axis.
    pub fn axis(&self) -> ParallelAxis {
        self.axis
    }

    /// The requested thread count (workers are capped at the axis extent).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run the convolution. The kernel is packed once, up front, and shared
    /// read-only by all workers (packing time is part of the measured
    /// execution, as in the paper).
    pub fn run(&self, input: &Tensor4, kernel: &Tensor4) -> Tensor4 {
        crate::naive::check_dims(self.shape(), input, kernel);
        let packed = PackedKernel::pack(self.shape(), kernel, self.seq.vec_len());
        self.run_packed(input, &packed)
    }

    /// Run the convolution with an already packed kernel.
    pub fn run_packed(&self, input: &Tensor4, packed: &PackedKernel) -> Tensor4 {
        let shape = *self.shape();
        let mut output = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        let slices = self.partition();
        if slices.len() <= 1 {
            let full = KernelRegion::full(&shape);
            self.seq.execute_region(input, packed, &mut output, &full);
            return output;
        }
        // Each worker accumulates its regions into a private full-size
        // scratch tensor (regions address absolute coordinates); the owned
        // output points are merged afterwards. Regions are disjoint across
        // workers, so the merge never overlaps. Transient memory is bounded
        // by `workers × |output|` with workers capped at `threads` (and at
        // the slice count), and the merge copies each output point once.
        let partials: Vec<Tensor4> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|regions| {
                    let seq = &self.seq;
                    scope.spawn(move || {
                        let mut scratch = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
                        for region in regions {
                            seq.execute_region(input, packed, &mut scratch, region);
                        }
                        scratch
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });
        for (regions, partial) in slices.iter().zip(&partials) {
            for region in regions {
                copy_region_output(partial, &mut output, region);
            }
        }
        output
    }

    /// Partition the output into per-worker region lists.
    ///
    /// A configuration carrying certified parallel factors
    /// (`TileConfig::parallel`, product > 1) is executed *as certified*: the
    /// per-dimension factors define a cross-product grid of output slices —
    /// exactly the decomposition the multicore cost model priced, including
    /// mixed-axis factor vectors like `K=2 · H=2` — and the grid cells are
    /// distributed round-robin over at most `threads` workers. Factor-less
    /// configurations fall back to splitting the executor's [`ParallelAxis`]
    /// into `threads` contiguous chunks. Either way workers are capped at
    /// the number of slices, so `threads` larger than the output never
    /// produces empty regions.
    fn partition(&self) -> Vec<Vec<KernelRegion>> {
        let shape = self.shape();
        let full = KernelRegion::full(shape);
        if self.threads <= 1 {
            return vec![vec![full]];
        }
        if self.config().total_parallelism() > 1 {
            let grid = self.factor_grid(&full);
            let workers = self.threads.min(grid.len()).max(1);
            let mut slices = vec![Vec::new(); workers];
            for (i, region) in grid.into_iter().enumerate() {
                slices[i % workers].push(region);
            }
            return slices;
        }
        match self.axis {
            ParallelAxis::OutputChannels => split_range(shape.k, self.threads)
                .into_iter()
                .map(|k| vec![KernelRegion { k, ..full }])
                .collect(),
            ParallelAxis::OutputRows => {
                // Flatten the n·h output rows, split them contiguously, and
                // rebuild each chunk as per-batch rectangles (a chunk may
                // straddle a batch boundary).
                let rows = shape.n * shape.h;
                split_range(rows, self.threads)
                    .into_iter()
                    .map(|(start, len)| {
                        let mut regions = Vec::new();
                        let mut row = start;
                        let end = start + len;
                        while row < end {
                            let n = row / shape.h;
                            let h_lo = row % shape.h;
                            let h_len = (shape.h - h_lo).min(end - row);
                            regions.push(KernelRegion { n: (n, 1), h: (h_lo, h_len), ..full });
                            row += h_len;
                        }
                        regions
                    })
                    .collect()
            }
        }
    }

    /// The cross-product slice grid of the configuration's parallel factors:
    /// each non-reduction dimension with factor `f > 1` is split into `f`
    /// contiguous chunks, and every combination of chunks is one region.
    /// The regions tile the full output space disjointly.
    fn factor_grid(&self, full: &KernelRegion) -> Vec<KernelRegion> {
        use conv_spec::LoopIndex;
        let shape = self.shape();
        let parallel = &self.config().parallel;
        let mut regions = vec![*full];
        for (idx, extent) in [
            (LoopIndex::N, shape.n),
            (LoopIndex::K, shape.k),
            (LoopIndex::H, shape.h),
            (LoopIndex::W, shape.w),
        ] {
            let f = parallel.get(idx);
            if f <= 1 {
                continue;
            }
            let chunks = split_range(extent, f);
            regions = regions
                .iter()
                .flat_map(|region| {
                    chunks.iter().map(move |&chunk| {
                        let mut r = *region;
                        match idx {
                            LoopIndex::N => r.n = chunk,
                            LoopIndex::K => r.k = chunk,
                            LoopIndex::H => r.h = chunk,
                            LoopIndex::W => r.w = chunk,
                            _ => unreachable!("reduction dims are never parallel factors"),
                        }
                        r
                    })
                })
                .collect();
        }
        regions
    }
}

/// Copy the output points a region owns from `partial` into `output`.
fn copy_region_output(partial: &Tensor4, output: &mut Tensor4, region: &KernelRegion) {
    for n in region.n.0..region.n.0 + region.n.1 {
        for k in region.k.0..region.k.0 + region.k.1 {
            for h in region.h.0..region.h.0 + region.h.1 {
                for w in region.w.0..region.w.0 + region.w.1 {
                    *output.at_mut(n, k, h, w) = partial.at(n, k, h, w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::conv2d_naive;
    use conv_spec::{LoopIndex, Permutation, TileSizes};

    fn config(shape: &ConvShape) -> TileConfig {
        TileConfig::new(
            Permutation::parse("kcrsnhw").unwrap(),
            [
                TileSizes::from_array([1, 4, 1, 1, 1, 1, 4]),
                TileSizes::from_array([1, 4, 3, 3, 3, 2, 5]),
                TileSizes::from_array([1, 8, 6, 3, 3, 5, 9]),
                TileSizes::from_array([2, 8, 6, 3, 3, 9, 11]),
            ],
            TileSizes::ones(),
        )
        .normalized(shape)
    }

    fn sequential_reference(shape: &ConvShape, seed: u64) -> (Tensor4, Tensor4, Tensor4) {
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, seed);
        let kernel = Tensor4::random(kk, kc, kr, ks, seed + 1);
        let seq = TiledConv::new(*shape, config(shape), 1).unwrap();
        let expected = seq.run(&input, &kernel);
        (input, kernel, expected)
    }

    #[test]
    fn both_axes_are_bit_identical_to_the_sequential_walk() {
        let shape = ConvShape::new(2, 8, 6, 3, 3, 9, 11, 1).unwrap();
        let (input, kernel, expected) = sequential_reference(&shape, 42);
        for axis in ParallelAxis::ALL {
            for threads in [1, 2, 3, 5, 64] {
                let par =
                    ParTiledConv::new(shape, config(&shape), threads).unwrap().with_axis(axis);
                let got = par.run(&input, &kernel);
                assert_eq!(got.as_slice(), expected.as_slice(), "axis {axis}, threads {threads}");
            }
        }
    }

    #[test]
    fn threads_beyond_the_axis_extent_are_capped() {
        // k = 2 with 8 threads on the channel axis; n·h = 9 rows with 64.
        let shape = ConvShape::new(1, 2, 3, 3, 3, 9, 9, 1).unwrap();
        let (input, kernel, expected) = sequential_reference(&shape, 7);
        for (axis, threads) in [(ParallelAxis::OutputChannels, 8), (ParallelAxis::OutputRows, 64)] {
            let par = ParTiledConv::new(shape, config(&shape), threads).unwrap().with_axis(axis);
            let got = par.run(&input, &kernel);
            assert_eq!(got.as_slice(), expected.as_slice(), "axis {axis}");
        }
    }

    #[test]
    fn certified_factor_grids_execute_as_certified_and_stay_exact() {
        // A mixed-axis factor vector (K=2 · H=2) on a shape neither axis can
        // absorb alone: the executor must run the certified grid, not
        // collapse to one axis, and stay bit-for-bit exact.
        let shape = ConvShape::new(1, 3, 4, 3, 3, 3, 5, 1).unwrap();
        let mut cfg = config(&shape);
        cfg.parallel = TileSizes::ones().with(LoopIndex::K, 2).with(LoopIndex::H, 2);
        let (input, kernel, _) = sequential_reference(&shape, 55);
        let expected = TiledConv::new(shape, cfg.clone(), 1).unwrap().run(&input, &kernel);
        for threads in [1, 2, 4, 9] {
            let par = ParTiledConv::new(shape, cfg.clone(), threads).unwrap();
            let got = par.run(&input, &kernel);
            assert_eq!(got.as_slice(), expected.as_slice(), "threads {threads}");
        }
        // The grid really is the 2×2 cross product of the factors.
        let par = ParTiledConv::new(shape, cfg, 4).unwrap();
        let grid = par.factor_grid(&KernelRegion::full(&shape));
        assert_eq!(grid.len(), 4);
        let mut cells: Vec<_> = grid.iter().map(|r| (r.k, r.h)).collect();
        cells.sort();
        assert_eq!(
            cells,
            vec![((0, 2), (0, 2)), ((0, 2), (2, 1)), ((2, 1), (0, 2)), ((2, 1), (2, 1))]
        );
    }

    #[test]
    fn row_chunks_straddling_batches_stay_exact() {
        // 3 batches × 5 rows split across 4 threads: chunks cross n bounds.
        let shape = ConvShape::new(3, 4, 3, 3, 3, 5, 6, 1).unwrap();
        let (input, kernel, expected) = sequential_reference(&shape, 99);
        let par = ParTiledConv::new(shape, config(&shape), 4)
            .unwrap()
            .with_axis(ParallelAxis::OutputRows);
        assert_eq!(par.run(&input, &kernel).as_slice(), expected.as_slice());
    }

    #[test]
    fn axis_defaults_to_the_configs_parallel_factors() {
        let shape = ConvShape::new(1, 8, 4, 3, 3, 8, 8, 1).unwrap();
        let mut cfg = config(&shape);
        cfg.parallel = TileSizes::ones().with(LoopIndex::H, 4);
        let par = ParTiledConv::new(shape, cfg, 4).unwrap();
        assert_eq!(par.axis(), ParallelAxis::OutputRows);
        assert_eq!(par.threads(), 4);
        let (input, kernel, expected) = sequential_reference(&shape, 11);
        assert_eq!(par.run(&input, &kernel).as_slice(), expected.as_slice());
    }

    #[test]
    fn generalized_shapes_match_naive_within_tolerance_and_sequential_exactly() {
        for (groups, stride, dilation) in [(4, 1, 1), (1, 2, 1), (8, 1, 2)] {
            let shape =
                ConvShape::new_general(1, 8, 8, 3, 3, 9, 9, stride, dilation, groups).unwrap();
            let (input, kernel, expected) = sequential_reference(&shape, 123);
            let par = ParTiledConv::new(shape, config(&shape), 3).unwrap();
            let got = par.run(&input, &kernel);
            assert_eq!(got.as_slice(), expected.as_slice());
            let naive = conv2d_naive(&shape, &input, &kernel);
            assert!(naive.allclose(&got, 1e-4));
        }
    }
}
