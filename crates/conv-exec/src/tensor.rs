//! Dense 4-D `f32` tensors in NCHW order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense 4-D tensor stored row-major in `(d0, d1, d2, d3)` order.
///
/// For feature maps the dimensions are `(N, C, H, W)`; for kernels they are
/// `(K, C, R, S)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    dims: (usize, usize, usize, usize),
    data: Vec<f32>,
}

impl Tensor4 {
    /// A zero-filled tensor.
    pub fn zeros(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Tensor4 { dims: (d0, d1, d2, d3), data: vec![0.0; d0 * d1 * d2 * d3] }
    }

    /// A tensor filled with uniform random values in `[-1, 1)`, seeded for
    /// reproducibility.
    pub fn random(d0: usize, d1: usize, d2: usize, d3: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..d0 * d1 * d2 * d3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Tensor4 { dims: (d0, d1, d2, d3), data }
    }

    /// A tensor built from an explicit data vector.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the dimensions.
    pub fn from_vec(dims: (usize, usize, usize, usize), data: Vec<f32>) -> Self {
        assert_eq!(data.len(), dims.0 * dims.1 * dims.2 * dims.3, "data length mismatch");
        Tensor4 { dims, data }
    }

    /// The dimensions `(d0, d1, d2, d3)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear offset of `(a, b, c, d)`.
    #[inline]
    pub fn offset(&self, a: usize, b: usize, c: usize, d: usize) -> usize {
        let (_d0, d1, d2, d3) = self.dims;
        ((a * d1 + b) * d2 + c) * d3 + d
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, a: usize, b: usize, c: usize, d: usize) -> f32 {
        self.data[self.offset(a, b, c, d)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, a: usize, b: usize, c: usize, d: usize) -> &mut f32 {
        let off = self.offset(a, b, c, d);
        &mut self.data[off]
    }

    /// The backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The mutable backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Set every element to zero (reuse the allocation between runs).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Whether all elements of `self` and `other` agree within `tol`
    /// (absolute or relative, whichever is looser).
    pub fn allclose(&self, other: &Tensor4, tol: f32) -> bool {
        if self.dims != other.dims {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let diff = (a - b).abs();
            diff <= tol || diff <= tol * a.abs().max(b.abs())
        })
    }

    /// Largest absolute difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &Tensor4) -> f32 {
        assert_eq!(self.dims, other.dims, "dimension mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.len(), 120);
        assert!(!t.is_empty());
        assert_eq!(t.at(1, 2, 3, 4), 0.0);
        *t.at_mut(1, 2, 3, 4) = 7.5;
        assert_eq!(t.at(1, 2, 3, 4), 7.5);
        assert_eq!(t.offset(0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 1, 0), 5);
        assert_eq!(t.offset(0, 1, 0, 0), 20);
        assert_eq!(t.offset(1, 0, 0, 0), 60);
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let a = Tensor4::random(1, 2, 3, 4, 42);
        let b = Tensor4::random(1, 2, 3, 4, 42);
        let c = Tensor4::random(1, 2, 3, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor4::from_vec((1, 1, 1, 3), vec![1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert!(a.allclose(&b, 1e-6));
        *b.at_mut(0, 0, 0, 2) = 3.001;
        assert!(!a.allclose(&b, 1e-6));
        assert!(a.allclose(&b, 1e-2));
        assert!((a.max_abs_diff(&b) - 0.001).abs() < 1e-6);
        let different_shape = Tensor4::zeros(1, 1, 3, 1);
        assert!(!a.allclose(&different_shape, 1.0));
    }

    #[test]
    fn fill_zero_resets() {
        let mut t = Tensor4::random(1, 1, 2, 2, 7);
        t.fill_zero();
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_checks_length() {
        let _ = Tensor4::from_vec((1, 1, 2, 2), vec![0.0; 3]);
    }
}
