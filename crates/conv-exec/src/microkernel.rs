//! Register-tiled microkernel.
//!
//! The paper's microkernel (Sec. 6) keeps a block of output elements in
//! vector registers, broadcasts input pixels, and streams packed kernel
//! vectors through FMA instructions (an outer-product scheme like BLIS).
//! This Rust version keeps the same structure — a small accumulator block
//! held in a stack buffer across the `c`, `r`, `s` reduction loops, with the
//! innermost loop running over the packed, contiguous output-channel lanes so
//! the compiler can vectorize it — without dropping to assembly.

use std::sync::OnceLock;

use conv_spec::ConvShape;

use crate::packing::PackedKernel;
use crate::tensor::Tensor4;

/// Maximum number of output accumulators the stack block holds. Register
/// tiles larger than this fall back to a direct (still correct, slower) loop.
pub const MAX_ACCUMULATORS: usize = 1024;

/// Read-only logical-NCHW view of the input tensor. The microkernel indexes
/// inputs by `(n, c, h, w)` regardless of how the elements are stored, so
/// the same kernel runs over plain NCHW ([`Tensor4`]) and blocked NCHWc
/// storage with identical arithmetic (and therefore bit-identical results).
pub trait InputView {
    /// Element `In[n][c][h][w]` (absolute channel index).
    fn value(&self, n: usize, c: usize, h: usize, w: usize) -> f32;
}

/// Mutable logical-NKHW view of the output tensor.
pub trait OutputView {
    /// Element `Out[n][k][h][w]`.
    fn value(&self, n: usize, k: usize, h: usize, w: usize) -> f32;
    /// Mutable element `Out[n][k][h][w]`.
    fn value_mut(&mut self, n: usize, k: usize, h: usize, w: usize) -> &mut f32;
}

impl InputView for Tensor4 {
    #[inline(always)]
    fn value(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.at(n, c, h, w)
    }
}

impl OutputView for Tensor4 {
    #[inline(always)]
    fn value(&self, n: usize, k: usize, h: usize, w: usize) -> f32 {
        self.at(n, k, h, w)
    }
    #[inline(always)]
    fn value_mut(&mut self, n: usize, k: usize, h: usize, w: usize) -> &mut f32 {
        self.at_mut(n, k, h, w)
    }
}

/// The inner-loop implementation the runtime dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Portable scalar lanes — the exact reference accumulation order
    /// (`a += x * k`, two roundings per MAC). Auto-vectorizable.
    Scalar,
    /// AVX2 + FMA intrinsics, eight lanes per vector: the same accumulation
    /// order per lane with fused multiply–adds (one rounding per MAC), so
    /// results are ULP-bounded against [`SimdBackend::Scalar`].
    Avx2Fma,
}

impl SimdBackend {
    /// Short tag used by benchmark reports (`scalar` / `avx2fma`).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2Fma => "avx2fma",
        }
    }
}

impl std::fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static ACTIVE_BACKEND: OnceLock<SimdBackend> = OnceLock::new();

/// Whether `MOPT_FORCE_SCALAR` is set (non-empty, not `"0"`): the escape
/// hatch that pins every executor to the exact scalar reference path, used
/// by the runtime-dispatch fallback tests and available to operators.
pub fn force_scalar() -> bool {
    std::env::var_os("MOPT_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The microkernel backend for this process: AVX2+FMA when the CPU reports
/// both features at runtime (`is_x86_feature_detected!`) and
/// `MOPT_FORCE_SCALAR` is unset, the scalar reference otherwise. Cached
/// after the first call.
pub fn active_backend() -> SimdBackend {
    *ACTIVE_BACKEND.get_or_init(|| {
        if force_scalar() {
            return SimdBackend::Scalar;
        }
        detected_backend()
    })
}

/// The best backend the CPU supports, ignoring `MOPT_FORCE_SCALAR`.
pub fn detected_backend() -> SimdBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdBackend::Avx2Fma;
        }
    }
    SimdBackend::Scalar
}

/// A register-tile region: for each loop index, the start offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRegion {
    /// Batch range `(start, len)`.
    pub n: (usize, usize),
    /// Output-channel range.
    pub k: (usize, usize),
    /// Input-channel range, group-relative: offsets are within
    /// `0..shape.reduction_c()` (for dense shapes that is the full channel
    /// range).
    pub c: (usize, usize),
    /// Kernel-row range.
    pub r: (usize, usize),
    /// Kernel-column range.
    pub s: (usize, usize),
    /// Output-row range.
    pub h: (usize, usize),
    /// Output-column range.
    pub w: (usize, usize),
}

impl KernelRegion {
    /// The full iteration space of a shape (the C range is the per-group
    /// reduction extent).
    pub fn full(shape: &ConvShape) -> Self {
        KernelRegion {
            n: (0, shape.n),
            k: (0, shape.k),
            c: (0, shape.reduction_c()),
            r: (0, shape.r),
            s: (0, shape.s),
            h: (0, shape.h),
            w: (0, shape.w),
        }
    }

    /// Number of output elements the region covers.
    pub fn output_points(&self) -> usize {
        self.n.1 * self.k.1 * self.h.1 * self.w.1
    }

    /// Number of multiply–accumulate operations in the region.
    pub fn macs(&self) -> usize {
        self.output_points() * self.c.1 * self.r.1 * self.s.1
    }
}

/// Execute one register tile: accumulate the region's contribution into
/// `output`.
///
/// The output block is loaded into a stack accumulator at entry and written
/// back at exit, exactly like the generated microkernel keeps accumulators in
/// vector registers across the reduction loops.
///
/// The region's `c` range is group-relative (`0..shape.reduction_c()`). For
/// grouped shapes the K range is split internally at group boundaries so that
/// each sub-block reads one contiguous band of input channels; dense shapes
/// take exactly the pre-generalization path (a single block with input
/// channel base 0).
pub fn run_microkernel<I: InputView, O: OutputView>(
    shape: &ConvShape,
    input: &I,
    kernel: &PackedKernel,
    output: &mut O,
    region: &KernelRegion,
) {
    run_microkernel_with_backend(shape, input, kernel, output, region, active_backend());
}

/// [`run_microkernel`] with an explicit inner-loop backend (the runtime
/// dispatcher normally picks it; tests pin it to prove scalar/SIMD
/// equivalence in one process).
pub fn run_microkernel_with_backend<I: InputView, O: OutputView>(
    shape: &ConvShape,
    input: &I,
    kernel: &PackedKernel,
    output: &mut O,
    region: &KernelRegion,
    backend: SimdBackend,
) {
    if region.output_points() == 0 || region.macs() == 0 {
        return;
    }
    if shape.groups <= 1 {
        dispatch(shape, input, kernel, output, region, 0, backend);
        return;
    }
    let k_per_group = shape.k_per_group().max(1);
    let (k0, nk) = region.k;
    for group in shape.groups_spanned(k0, nk) {
        let k_lo = k0.max(group * k_per_group);
        let k_hi = ((group + 1) * k_per_group).min(k0 + nk);
        let sub = KernelRegion { k: (k_lo, k_hi - k_lo), ..*region };
        dispatch(shape, input, kernel, output, &sub, shape.input_channel(k_lo, 0), backend);
    }
}

/// Run one single-group block through the blocked or direct path. `c_base` is
/// the absolute input channel corresponding to the region's relative `c = 0`.
fn dispatch<I: InputView, O: OutputView>(
    shape: &ConvShape,
    input: &I,
    kernel: &PackedKernel,
    output: &mut O,
    region: &KernelRegion,
    c_base: usize,
    backend: SimdBackend,
) {
    if region.output_points() <= MAX_ACCUMULATORS {
        microkernel_blocked(shape, input, kernel, output, region, c_base, backend);
    } else {
        microkernel_direct(shape, input, kernel, output, region, c_base);
    }
}

/// Accumulator layout: `acc[((n_i * nh + h_i) * nw + w_i) * nk + k_i]` so the
/// innermost loop over output channels is contiguous (matching the packed
/// kernel's lane order).
fn microkernel_blocked<I: InputView, O: OutputView>(
    shape: &ConvShape,
    input: &I,
    kernel: &PackedKernel,
    output: &mut O,
    region: &KernelRegion,
    c_base: usize,
    backend: SimdBackend,
) {
    let (n0, nn) = region.n;
    let (k0, nk) = region.k;
    let (c0, nc) = region.c;
    let (r0, nr) = region.r;
    let (s0, ns) = region.s;
    let (h0, nh) = region.h;
    let (w0, nw) = region.w;
    let stride = shape.stride;
    let dil = shape.dilation;

    let mut acc = [0.0f32; MAX_ACCUMULATORS];
    let acc_len = nn * nh * nw * nk;

    // The vector path needs the K range to cover exactly one packed group
    // (eight aligned lanes), so the contiguous `PackedKernel::group` slice
    // is the lanes `k0..k0+8` the scalar loop would read.
    let use_avx2 = backend == SimdBackend::Avx2Fma
        && nk == AVX2_LANES
        && kernel.vec_len() == AVX2_LANES
        && k0 % AVX2_LANES == 0;

    // Load the output block into the accumulator.
    {
        let mut idx = 0;
        for n in n0..n0 + nn {
            for h in h0..h0 + nh {
                for w in w0..w0 + nw {
                    for k in k0..k0 + nk {
                        acc[idx] = output.value(n, k, h, w);
                        idx += 1;
                    }
                }
            }
        }
        debug_assert_eq!(idx, acc_len);
    }

    // Reduction loops: c, r, s outermost (as in Listing 4), then the
    // outer-product over output pixels × output channels. The kernel is
    // addressed with the group-relative channel, the input with the absolute
    // one; dilation spreads the sampled pixels by `dil`.
    for c in c0..c0 + nc {
        for r in r0..r0 + nr {
            for s in s0..s0 + ns {
                let mut idx = 0;
                for n in n0..n0 + nn {
                    for h in h0..h0 + nh {
                        let in_row = h * stride + r * dil;
                        for w in w0..w0 + nw {
                            let x = input.value(n, c_base + c, in_row, w * stride + s * dil);
                            // Innermost: contiguous packed-kernel lanes.
                            let block = &mut acc[idx..idx + nk];
                            #[cfg(target_arch = "x86_64")]
                            if use_avx2 {
                                // SAFETY: AVX2+FMA presence was verified by
                                // the runtime dispatcher; both slices hold
                                // exactly AVX2_LANES f32s.
                                unsafe { fma_lanes_avx2(block, kernel.group(k0, c, r, s), x) };
                                idx += nk;
                                continue;
                            }
                            #[cfg(not(target_arch = "x86_64"))]
                            let _ = use_avx2;
                            for (k_i, a) in block.iter_mut().enumerate() {
                                *a += x * kernel.at(k0 + k_i, c, r, s);
                            }
                            idx += nk;
                        }
                    }
                }
            }
        }
    }

    // Write the accumulator back.
    {
        let mut idx = 0;
        for n in n0..n0 + nn {
            for h in h0..h0 + nh {
                for w in w0..w0 + nw {
                    for k in k0..k0 + nk {
                        *output.value_mut(n, k, h, w) = acc[idx];
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Lanes per AVX2 vector of `f32`.
pub const AVX2_LANES: usize = 8;

/// One outer-product step on eight contiguous lanes:
/// `block[i] = fma(x, lanes[i], block[i])`. Same per-lane accumulation order
/// as the scalar loop, with the multiply–add fused (one rounding instead of
/// two), so the result is ULP-bounded against the scalar path.
///
/// # Safety
///
/// The caller must have verified AVX2 and FMA support at runtime, and both
/// slices must hold at least [`AVX2_LANES`] elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_lanes_avx2(block: &mut [f32], lanes: &[f32], x: f32) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    debug_assert!(block.len() >= AVX2_LANES && lanes.len() >= AVX2_LANES);
    unsafe {
        let acc = _mm256_loadu_ps(block.as_ptr());
        let ker = _mm256_loadu_ps(lanes.as_ptr());
        let xv = _mm256_set1_ps(x);
        _mm256_storeu_ps(block.as_mut_ptr(), _mm256_fmadd_ps(xv, ker, acc));
    }
}

/// Fallback path without the stack accumulator (used when the register tile
/// is configured larger than [`MAX_ACCUMULATORS`] outputs).
fn microkernel_direct<I: InputView, O: OutputView>(
    shape: &ConvShape,
    input: &I,
    kernel: &PackedKernel,
    output: &mut O,
    region: &KernelRegion,
    c_base: usize,
) {
    let (n0, nn) = region.n;
    let (k0, nk) = region.k;
    let (c0, nc) = region.c;
    let (r0, nr) = region.r;
    let (s0, ns) = region.s;
    let (h0, nh) = region.h;
    let (w0, nw) = region.w;
    let stride = shape.stride;
    let dil = shape.dilation;
    for n in n0..n0 + nn {
        for k in k0..k0 + nk {
            for c in c0..c0 + nc {
                for r in r0..r0 + nr {
                    for s in s0..s0 + ns {
                        let kv = kernel.at(k, c, r, s);
                        for h in h0..h0 + nh {
                            let in_row = h * stride + r * dil;
                            for w in w0..w0 + nw {
                                *output.value_mut(n, k, h, w) +=
                                    input.value(n, c_base + c, in_row, w * stride + s * dil) * kv;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::conv2d_naive;

    fn setup(shape: &ConvShape) -> (Tensor4, Tensor4, PackedKernel) {
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 11);
        let kernel = Tensor4::random(kk, kc, kr, ks, 12);
        let packed = PackedKernel::pack(shape, &kernel, 8);
        (input, kernel, packed)
    }

    #[test]
    fn full_region_matches_naive() {
        let shape = ConvShape::new(1, 6, 3, 3, 3, 5, 5, 1).unwrap();
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4), "max diff {}", reference.max_abs_diff(&out));
    }

    #[test]
    fn partial_regions_compose_to_full_result() {
        // Splitting the reduction (c) and output (k, w) dimensions across
        // several microkernel calls must accumulate to the same result.
        let shape = ConvShape::new(1, 4, 4, 3, 3, 6, 6, 1).unwrap();
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        for k0 in (0..shape.k).step_by(2) {
            for c0 in (0..shape.c).step_by(2) {
                for w0 in (0..shape.w).step_by(3) {
                    let region = KernelRegion {
                        n: (0, 1),
                        k: (k0, 2),
                        c: (c0, 2),
                        r: (0, shape.r),
                        s: (0, shape.s),
                        h: (0, shape.h),
                        w: (w0, 3),
                    };
                    run_microkernel(&shape, &input, &packed, &mut out, &region);
                }
            }
        }
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn strided_region_matches_naive() {
        let shape = ConvShape::from_table1(4, 3, 9, 3, 2);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn large_region_uses_direct_fallback_and_stays_correct() {
        // Output points exceed MAX_ACCUMULATORS → fallback path.
        let shape = ConvShape::new(1, 16, 2, 3, 3, 12, 12, 1).unwrap();
        assert!(KernelRegion::full(&shape).output_points() > MAX_ACCUMULATORS);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn depthwise_full_region_matches_naive() {
        let shape = ConvShape::depthwise(12, 8, 3, 1);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4), "max diff {}", reference.max_abs_diff(&out));
    }

    #[test]
    fn grouped_region_spanning_groups_matches_naive() {
        // K regions that straddle group boundaries must be split internally.
        let shape = ConvShape::new_general(1, 8, 8, 3, 3, 6, 6, 1, 1, 4).unwrap();
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        // Split K as (0..3), (3..8): both sub-ranges straddle group edges.
        for (k0, nk) in [(0usize, 3usize), (3, 5)] {
            let region = KernelRegion { k: (k0, nk), ..KernelRegion::full(&shape) };
            run_microkernel(&shape, &input, &packed, &mut out, &region);
        }
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn dilated_region_matches_naive() {
        let shape = ConvShape::from_table1_dilated(4, 3, 12, 3, 1, 2);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn empty_region_is_a_no_op() {
        let shape = ConvShape::new(1, 2, 2, 1, 1, 2, 2, 1).unwrap();
        let (input, _kernel, packed) = setup(&shape);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        let mut region = KernelRegion::full(&shape);
        region.c = (0, 0);
        run_microkernel(&shape, &input, &packed, &mut out, &region);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(region.macs(), 0);
    }

    #[test]
    fn backend_name_round_trips_display() {
        assert_eq!(SimdBackend::Scalar.to_string(), "scalar");
        assert_eq!(SimdBackend::Avx2Fma.to_string(), "avx2fma");
    }

    #[test]
    fn avx2_backend_is_ulp_bounded_against_scalar() {
        if detected_backend() != SimdBackend::Avx2Fma {
            eprintln!("skipping: CPU does not report avx2+fma");
            return;
        }
        // nk == 8 == vec_len with k0 % 8 == 0 engages the vector inner loop.
        for &(stride, dilation, groups) in &[(1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2)] {
            let shape =
                ConvShape::new_general(2, 16, 8, 3, 3, 6, 6, stride, dilation, groups).unwrap();
            let (input, _kernel, packed) = setup(&shape);
            let mut scalar_out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
            let mut simd_out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
            for k0 in (0..shape.k).step_by(8) {
                let region = KernelRegion { k: (k0, 8), ..KernelRegion::full(&shape) };
                run_microkernel_with_backend(
                    &shape,
                    &input,
                    &packed,
                    &mut scalar_out,
                    &region,
                    SimdBackend::Scalar,
                );
                run_microkernel_with_backend(
                    &shape,
                    &input,
                    &packed,
                    &mut simd_out,
                    &region,
                    SimdBackend::Avx2Fma,
                );
            }
            // One fused rounding per MAC vs two scalar roundings: each of the
            // ≤72 reduction steps differs by at most one ULP of the running
            // accumulator (intermediate magnitude O(1) for inputs in [-1, 1]),
            // so the paths agree to ~72 · ε even when the final value is tiny
            // from cancellation. A real lane bug would be off by O(1).
            let tol = 72.0 * f32::EPSILON * 4.0;
            for (a, b) in scalar_out.as_slice().iter().zip(simd_out.as_slice()) {
                assert!((a - b).abs() <= tol, "scalar {a} vs simd {b}");
            }
        }
    }

    #[test]
    fn avx2_gate_falls_back_on_unaligned_k_ranges() {
        // Regions that don't line up with packed groups must take the scalar
        // inner loop even under the Avx2Fma backend, and stay exact.
        let shape = ConvShape::new(1, 12, 4, 3, 3, 5, 5, 1).unwrap();
        let (input, _kernel, packed) = setup(&shape);
        let mut scalar_out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        let mut simd_out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        for (k0, nk) in [(0usize, 5usize), (5, 7)] {
            let region = KernelRegion { k: (k0, nk), ..KernelRegion::full(&shape) };
            run_microkernel_with_backend(
                &shape,
                &input,
                &packed,
                &mut scalar_out,
                &region,
                SimdBackend::Scalar,
            );
            run_microkernel_with_backend(
                &shape,
                &input,
                &packed,
                &mut simd_out,
                &region,
                SimdBackend::Avx2Fma,
            );
        }
        // nk != 8 everywhere → both runs used the identical scalar loop.
        assert_eq!(scalar_out.as_slice(), simd_out.as_slice());
    }

    #[test]
    fn force_scalar_env_parses_common_values() {
        // Can't mutate process env safely in parallel tests; exercise the
        // pure predicate through its documented contract instead.
        assert!(matches!(active_backend(), SimdBackend::Scalar | SimdBackend::Avx2Fma));
        // Cached value is stable.
        assert_eq!(active_backend(), active_backend());
    }

    #[test]
    fn region_accessors() {
        let shape = ConvShape::new(2, 3, 4, 1, 1, 5, 6, 1).unwrap();
        let r = KernelRegion::full(&shape);
        assert_eq!(r.output_points(), 2 * 3 * 5 * 6);
        assert_eq!(r.macs(), 2 * 3 * 5 * 6 * 4);
    }
}
