//! Register-tiled microkernel.
//!
//! The paper's microkernel (Sec. 6) keeps a block of output elements in
//! vector registers, broadcasts input pixels, and streams packed kernel
//! vectors through FMA instructions (an outer-product scheme like BLIS).
//! This Rust version keeps the same structure — a small accumulator block
//! held in a stack buffer across the `c`, `r`, `s` reduction loops, with the
//! innermost loop running over the packed, contiguous output-channel lanes so
//! the compiler can vectorize it — without dropping to assembly.

use conv_spec::ConvShape;

use crate::packing::PackedKernel;
use crate::tensor::Tensor4;

/// Maximum number of output accumulators the stack block holds. Register
/// tiles larger than this fall back to a direct (still correct, slower) loop.
pub const MAX_ACCUMULATORS: usize = 1024;

/// A register-tile region: for each loop index, the start offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRegion {
    /// Batch range `(start, len)`.
    pub n: (usize, usize),
    /// Output-channel range.
    pub k: (usize, usize),
    /// Input-channel range, group-relative: offsets are within
    /// `0..shape.reduction_c()` (for dense shapes that is the full channel
    /// range).
    pub c: (usize, usize),
    /// Kernel-row range.
    pub r: (usize, usize),
    /// Kernel-column range.
    pub s: (usize, usize),
    /// Output-row range.
    pub h: (usize, usize),
    /// Output-column range.
    pub w: (usize, usize),
}

impl KernelRegion {
    /// The full iteration space of a shape (the C range is the per-group
    /// reduction extent).
    pub fn full(shape: &ConvShape) -> Self {
        KernelRegion {
            n: (0, shape.n),
            k: (0, shape.k),
            c: (0, shape.reduction_c()),
            r: (0, shape.r),
            s: (0, shape.s),
            h: (0, shape.h),
            w: (0, shape.w),
        }
    }

    /// Number of output elements the region covers.
    pub fn output_points(&self) -> usize {
        self.n.1 * self.k.1 * self.h.1 * self.w.1
    }

    /// Number of multiply–accumulate operations in the region.
    pub fn macs(&self) -> usize {
        self.output_points() * self.c.1 * self.r.1 * self.s.1
    }
}

/// Execute one register tile: accumulate the region's contribution into
/// `output`.
///
/// The output block is loaded into a stack accumulator at entry and written
/// back at exit, exactly like the generated microkernel keeps accumulators in
/// vector registers across the reduction loops.
///
/// The region's `c` range is group-relative (`0..shape.reduction_c()`). For
/// grouped shapes the K range is split internally at group boundaries so that
/// each sub-block reads one contiguous band of input channels; dense shapes
/// take exactly the pre-generalization path (a single block with input
/// channel base 0).
pub fn run_microkernel(
    shape: &ConvShape,
    input: &Tensor4,
    kernel: &PackedKernel,
    output: &mut Tensor4,
    region: &KernelRegion,
) {
    if region.output_points() == 0 || region.macs() == 0 {
        return;
    }
    if shape.groups <= 1 {
        dispatch(shape, input, kernel, output, region, 0);
        return;
    }
    let k_per_group = shape.k_per_group().max(1);
    let (k0, nk) = region.k;
    for group in shape.groups_spanned(k0, nk) {
        let k_lo = k0.max(group * k_per_group);
        let k_hi = ((group + 1) * k_per_group).min(k0 + nk);
        let sub = KernelRegion { k: (k_lo, k_hi - k_lo), ..*region };
        dispatch(shape, input, kernel, output, &sub, shape.input_channel(k_lo, 0));
    }
}

/// Run one single-group block through the blocked or direct path. `c_base` is
/// the absolute input channel corresponding to the region's relative `c = 0`.
fn dispatch(
    shape: &ConvShape,
    input: &Tensor4,
    kernel: &PackedKernel,
    output: &mut Tensor4,
    region: &KernelRegion,
    c_base: usize,
) {
    if region.output_points() <= MAX_ACCUMULATORS {
        microkernel_blocked(shape, input, kernel, output, region, c_base);
    } else {
        microkernel_direct(shape, input, kernel, output, region, c_base);
    }
}

/// Accumulator layout: `acc[((n_i * nh + h_i) * nw + w_i) * nk + k_i]` so the
/// innermost loop over output channels is contiguous (matching the packed
/// kernel's lane order).
fn microkernel_blocked(
    shape: &ConvShape,
    input: &Tensor4,
    kernel: &PackedKernel,
    output: &mut Tensor4,
    region: &KernelRegion,
    c_base: usize,
) {
    let (n0, nn) = region.n;
    let (k0, nk) = region.k;
    let (c0, nc) = region.c;
    let (r0, nr) = region.r;
    let (s0, ns) = region.s;
    let (h0, nh) = region.h;
    let (w0, nw) = region.w;
    let stride = shape.stride;
    let dil = shape.dilation;

    let mut acc = [0.0f32; MAX_ACCUMULATORS];
    let acc_len = nn * nh * nw * nk;

    // Load the output block into the accumulator.
    {
        let mut idx = 0;
        for n in n0..n0 + nn {
            for h in h0..h0 + nh {
                for w in w0..w0 + nw {
                    for k in k0..k0 + nk {
                        acc[idx] = output.at(n, k, h, w);
                        idx += 1;
                    }
                }
            }
        }
        debug_assert_eq!(idx, acc_len);
    }

    // Reduction loops: c, r, s outermost (as in Listing 4), then the
    // outer-product over output pixels × output channels. The kernel is
    // addressed with the group-relative channel, the input with the absolute
    // one; dilation spreads the sampled pixels by `dil`.
    for c in c0..c0 + nc {
        for r in r0..r0 + nr {
            for s in s0..s0 + ns {
                let mut idx = 0;
                for n in n0..n0 + nn {
                    for h in h0..h0 + nh {
                        let in_row = h * stride + r * dil;
                        for w in w0..w0 + nw {
                            let x = input.at(n, c_base + c, in_row, w * stride + s * dil);
                            // Innermost: contiguous packed-kernel lanes.
                            let block = &mut acc[idx..idx + nk];
                            for (k_i, a) in block.iter_mut().enumerate() {
                                *a += x * kernel.at(k0 + k_i, c, r, s);
                            }
                            idx += nk;
                        }
                    }
                }
            }
        }
    }

    // Write the accumulator back.
    {
        let mut idx = 0;
        for n in n0..n0 + nn {
            for h in h0..h0 + nh {
                for w in w0..w0 + nw {
                    for k in k0..k0 + nk {
                        *output.at_mut(n, k, h, w) = acc[idx];
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Fallback path without the stack accumulator (used when the register tile
/// is configured larger than [`MAX_ACCUMULATORS`] outputs).
fn microkernel_direct(
    shape: &ConvShape,
    input: &Tensor4,
    kernel: &PackedKernel,
    output: &mut Tensor4,
    region: &KernelRegion,
    c_base: usize,
) {
    let (n0, nn) = region.n;
    let (k0, nk) = region.k;
    let (c0, nc) = region.c;
    let (r0, nr) = region.r;
    let (s0, ns) = region.s;
    let (h0, nh) = region.h;
    let (w0, nw) = region.w;
    let stride = shape.stride;
    let dil = shape.dilation;
    for n in n0..n0 + nn {
        for k in k0..k0 + nk {
            for c in c0..c0 + nc {
                for r in r0..r0 + nr {
                    for s in s0..s0 + ns {
                        let kv = kernel.at(k, c, r, s);
                        for h in h0..h0 + nh {
                            let in_row = h * stride + r * dil;
                            for w in w0..w0 + nw {
                                *output.at_mut(n, k, h, w) +=
                                    input.at(n, c_base + c, in_row, w * stride + s * dil) * kv;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::conv2d_naive;

    fn setup(shape: &ConvShape) -> (Tensor4, Tensor4, PackedKernel) {
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 11);
        let kernel = Tensor4::random(kk, kc, kr, ks, 12);
        let packed = PackedKernel::pack(shape, &kernel, 8);
        (input, kernel, packed)
    }

    #[test]
    fn full_region_matches_naive() {
        let shape = ConvShape::new(1, 6, 3, 3, 3, 5, 5, 1).unwrap();
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4), "max diff {}", reference.max_abs_diff(&out));
    }

    #[test]
    fn partial_regions_compose_to_full_result() {
        // Splitting the reduction (c) and output (k, w) dimensions across
        // several microkernel calls must accumulate to the same result.
        let shape = ConvShape::new(1, 4, 4, 3, 3, 6, 6, 1).unwrap();
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        for k0 in (0..shape.k).step_by(2) {
            for c0 in (0..shape.c).step_by(2) {
                for w0 in (0..shape.w).step_by(3) {
                    let region = KernelRegion {
                        n: (0, 1),
                        k: (k0, 2),
                        c: (c0, 2),
                        r: (0, shape.r),
                        s: (0, shape.s),
                        h: (0, shape.h),
                        w: (w0, 3),
                    };
                    run_microkernel(&shape, &input, &packed, &mut out, &region);
                }
            }
        }
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn strided_region_matches_naive() {
        let shape = ConvShape::from_table1(4, 3, 9, 3, 2);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn large_region_uses_direct_fallback_and_stays_correct() {
        // Output points exceed MAX_ACCUMULATORS → fallback path.
        let shape = ConvShape::new(1, 16, 2, 3, 3, 12, 12, 1).unwrap();
        assert!(KernelRegion::full(&shape).output_points() > MAX_ACCUMULATORS);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn depthwise_full_region_matches_naive() {
        let shape = ConvShape::depthwise(12, 8, 3, 1);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4), "max diff {}", reference.max_abs_diff(&out));
    }

    #[test]
    fn grouped_region_spanning_groups_matches_naive() {
        // K regions that straddle group boundaries must be split internally.
        let shape = ConvShape::new_general(1, 8, 8, 3, 3, 6, 6, 1, 1, 4).unwrap();
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        // Split K as (0..3), (3..8): both sub-ranges straddle group edges.
        for (k0, nk) in [(0usize, 3usize), (3, 5)] {
            let region = KernelRegion { k: (k0, nk), ..KernelRegion::full(&shape) };
            run_microkernel(&shape, &input, &packed, &mut out, &region);
        }
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn dilated_region_matches_naive() {
        let shape = ConvShape::from_table1_dilated(4, 3, 12, 3, 1, 2);
        let (input, kernel, packed) = setup(&shape);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        run_microkernel(&shape, &input, &packed, &mut out, &KernelRegion::full(&shape));
        assert!(reference.allclose(&out, 1e-4));
    }

    #[test]
    fn empty_region_is_a_no_op() {
        let shape = ConvShape::new(1, 2, 2, 1, 1, 2, 2, 1).unwrap();
        let (input, _kernel, packed) = setup(&shape);
        let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
        let mut region = KernelRegion::full(&shape);
        region.c = (0, 0);
        run_microkernel(&shape, &input, &packed, &mut out, &region);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(region.macs(), 0);
    }

    #[test]
    fn region_accessors() {
        let shape = ConvShape::new(2, 3, 4, 1, 1, 5, 6, 1).unwrap();
        let r = KernelRegion::full(&shape);
        assert_eq!(r.output_points(), 2 * 3 * 5 * 6);
        assert_eq!(r.macs(), 2 * 3 * 5 * 6 * 4);
    }
}
