//! Single-level data-movement cost expressions (Sec. 3 of the paper).
//!
//! Given a tile-loop permutation and parametric tile sizes, these functions
//! compute the volume of data moved between a cache of capacity `C` and the
//! next slower memory for one complete execution of the tiled loop nest,
//! under the paper's modeling assumptions:
//!
//! * the cache is fully associative with LRU replacement,
//! * only cold and capacity misses are modeled,
//! * tile sizes are large enough that the combined footprint of two adjacent
//!   tiles exceeds the cache capacity (so inter-tile reuse only survives for
//!   tensors whose accessed slice is *identical* between consecutive tiles —
//!   i.e. tensors for which every tile-loop index below the reuse point is
//!   absent).
//!
//! The derivation (Sec. 3.2) yields, for each tensor `A`, a product of
//! `N_j / T_j` over the tile loops at and outside the innermost *present*
//! iterator of `A`, times the tile footprint of `A`; the input tensor has an
//! additional partial-reuse form when the innermost present iterator is one
//! of `w, h, s, r` (sliding-window overlap).

use conv_spec::{ConvShape, LoopIndex, Permutation, TileSizes, ALL_INDICES};
use serde::{Deserialize, Serialize};

/// Real-valued tile sizes (one per loop index, canonical order), as used by
/// the non-linear optimization formulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealTiles {
    sizes: [f64; 7],
}

impl RealTiles {
    /// From an array in canonical `[n, k, c, r, s, h, w]` order.
    pub fn from_array(sizes: [f64; 7]) -> Self {
        RealTiles { sizes }
    }

    /// All ones.
    pub fn ones() -> Self {
        RealTiles { sizes: [1.0; 7] }
    }

    /// The problem extents as real tiles (an "untiled" vector).
    pub fn full(shape: &ConvShape) -> Self {
        let e = shape.extents();
        RealTiles { sizes: e.map(|v| v as f64) }
    }

    /// Tile size for a loop index.
    pub fn get(&self, idx: LoopIndex) -> f64 {
        self.sizes[idx.canonical_position()]
    }

    /// Set the tile size for a loop index.
    pub fn set(&mut self, idx: LoopIndex, value: f64) {
        self.sizes[idx.canonical_position()] = value;
    }

    /// Builder-style set.
    pub fn with(mut self, idx: LoopIndex, value: f64) -> Self {
        self.set(idx, value);
        self
    }

    /// As an array in canonical order.
    pub fn as_array(&self) -> [f64; 7] {
        self.sizes
    }

    /// Clamp each tile into `[1, extent]` for a given enclosing extent vector.
    pub fn clamped(&self, extents: &[f64; 7]) -> RealTiles {
        let mut out = *self;
        for (size, &extent) in out.sizes.iter_mut().zip(extents) {
            *size = size.clamp(1.0, extent.max(1.0));
        }
        out
    }
}

impl From<TileSizes> for RealTiles {
    fn from(t: TileSizes) -> Self {
        RealTiles { sizes: t.as_array().map(|v| v as f64) }
    }
}

impl From<&TileSizes> for RealTiles {
    fn from(t: &TileSizes) -> Self {
        RealTiles { sizes: t.as_array().map(|v| v as f64) }
    }
}

impl RealTiles {
    /// Convert to integer tile sizes by rounding, clamped to at least 1.
    pub fn to_tile_sizes(&self) -> TileSizes {
        TileSizes::from_array(self.sizes.map(|v| v.round().max(1.0) as usize))
    }
}

/// Options for the cost expressions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostOptions {
    /// Cache-line (or DRAM-transaction) size in elements. `1` reproduces the
    /// paper's element-granularity model; larger values enable the spatial-
    /// locality extension of Sec. 12, which replaces the tile size along each
    /// tensor's fastest-varying dimension by `ceil(T / line)` lines.
    pub line_elems: usize,
}

impl Default for CostOptions {
    fn default() -> Self {
        CostOptions { line_elems: 1 }
    }
}

/// Per-tensor data-movement volumes (in elements, or in lines when the
/// spatial-locality extension is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayVolumes {
    /// Volume for the input tensor.
    pub input: f64,
    /// Volume for the kernel tensor.
    pub kernel: f64,
    /// Volume for the output tensor (already includes the factor of 2 for
    /// read + write-back).
    pub output: f64,
}

impl ArrayVolumes {
    /// Total data movement.
    pub fn total(&self) -> f64 {
        self.input + self.kernel + self.output
    }
}

/// Number of elements of the (dilated) input window spanned by a tile of
/// `t` output positions combined with a tile of `k` kernel taps along one
/// spatial dimension: `(t-1)·stride + (k-1)·dilation + 1`.
///
/// For `dilation == 1` this is exactly the paper's `(T-1)·stride + K` (and
/// `T + K - 1` at stride 1); the rewrite is bit-identical for dense shapes
/// because subtracting and re-adding 1.0 is exact for every tile value ≥ 1.
fn dilated_window(t: f64, taps: f64, stride: f64, dilation: f64) -> f64 {
    // Compute the effective (dilated) tap span first: for dilation == 1 it is
    // exactly `taps` (x−1 and +1 are exact for x ≥ 1), so the final addition
    // sequence — (t−1)·stride + taps — is operation-for-operation the dense
    // expression and therefore bit-identical to the pre-generalization model.
    let eff_taps = (taps - 1.0) * dilation + 1.0;
    (t - 1.0) * stride + eff_taps
}

/// Continuous group-span factor: how many of the shape's channel groups a K
/// tile of (real-valued) size `tk` reaches. Dense shapes always yield exactly
/// `1.0`; grouped shapes yield `clamp(tk / (K/groups), 1, groups)`, so an
/// untiled K loop touches every group (and hence every input channel).
fn group_span(shape: &ConvShape, tk: f64) -> f64 {
    if shape.groups <= 1 {
        return 1.0;
    }
    let k_per_group = (shape.k_per_group().max(1)) as f64;
    (tk / k_per_group).clamp(1.0, shape.groups as f64)
}

/// Tile footprint of the input tensor (elements), honouring the stride,
/// dilation, and channel groups. `T_c` is the *per-group* reduction tile, so
/// the footprint is multiplied by the number of groups the K tile spans.
pub fn input_footprint(shape: &ConvShape, t: &RealTiles) -> f64 {
    let stride = shape.stride as f64;
    let dilation = shape.dilation as f64;
    let rows = dilated_window(t.get(LoopIndex::H), t.get(LoopIndex::R), stride, dilation);
    let cols = dilated_window(t.get(LoopIndex::W), t.get(LoopIndex::S), stride, dilation);
    let span = group_span(shape, t.get(LoopIndex::K));
    t.get(LoopIndex::N) * t.get(LoopIndex::C) * span * rows * cols
}

/// Tile footprint of the kernel tensor (elements).
pub fn kernel_footprint(t: &RealTiles) -> f64 {
    t.get(LoopIndex::K) * t.get(LoopIndex::C) * t.get(LoopIndex::R) * t.get(LoopIndex::S)
}

/// Tile footprint of the output tensor (elements).
pub fn output_footprint(t: &RealTiles) -> f64 {
    t.get(LoopIndex::N) * t.get(LoopIndex::K) * t.get(LoopIndex::H) * t.get(LoopIndex::W)
}

/// Combined tile footprint — the left-hand side of the capacity constraint
/// (Eq. 4).
pub fn total_footprint(shape: &ConvShape, t: &RealTiles) -> f64 {
    input_footprint(shape, t) + kernel_footprint(t) + output_footprint(t)
}

/// Spatial-locality scaling: number of cache lines spanned by a contiguous
/// run of `elems` elements along the fastest-varying dimension.
fn lines(elems: f64, line: usize) -> f64 {
    if line <= 1 || elems <= 0.0 {
        elems.max(0.0)
    } else {
        (elems / line as f64).ceil().max(1.0)
    }
}

/// Footprint of a tensor measured in cache lines (spatial-locality extension):
/// only the fastest-varying dimension is scaled by the line size.
fn output_footprint_lines(t: &RealTiles, line: usize) -> f64 {
    t.get(LoopIndex::N)
        * t.get(LoopIndex::K)
        * t.get(LoopIndex::H)
        * lines(t.get(LoopIndex::W), line)
}

fn kernel_footprint_lines(t: &RealTiles, line: usize) -> f64 {
    t.get(LoopIndex::K)
        * t.get(LoopIndex::C)
        * t.get(LoopIndex::R)
        * lines(t.get(LoopIndex::S), line)
}

fn input_footprint_lines(shape: &ConvShape, t: &RealTiles, line: usize) -> f64 {
    let stride = shape.stride as f64;
    let dilation = shape.dilation as f64;
    let rows = dilated_window(t.get(LoopIndex::H), t.get(LoopIndex::R), stride, dilation);
    let cols = dilated_window(t.get(LoopIndex::W), t.get(LoopIndex::S), stride, dilation);
    let span = group_span(shape, t.get(LoopIndex::K));
    t.get(LoopIndex::N) * t.get(LoopIndex::C) * span * rows * lines(cols, line)
}

/// Innermost (1-based from the inner end) position in `perm` of a loop index
/// that is *present* in the index expressions of the given tensor.
fn reuse_position(perm: &Permutation, present: impl Fn(LoopIndex) -> bool) -> usize {
    perm.inner_to_outer()
        .iter()
        .enumerate()
        .find(|(_, idx)| present(**idx))
        .map(|(i, _)| i + 1)
        .expect("every tensor has at least one present index")
}

/// Product of `N_j / T_j` over all tile loops at positions `>= from_pos`
/// (counted from the innermost loop, 1-based).
fn trip_product(
    shape: &ConvShape,
    perm: &Permutation,
    tiles: &RealTiles,
    extents: &RealTiles,
    from_pos: usize,
) -> f64 {
    let inner = perm.inner_to_outer();
    let mut prod = 1.0;
    for (i, idx) in inner.iter().enumerate() {
        let pos = i + 1;
        if pos >= from_pos {
            let n = extents.get(*idx);
            let t = tiles.get(*idx).max(1e-12);
            prod *= (n / t).max(1.0);
        }
    }
    let _ = shape;
    prod
}

/// Data-movement volume of a single-level tiled execution for an arbitrary
/// permutation, parametric in (real-valued) tile sizes.
///
/// This is the general form of Sec. 3.2; the closed-form expressions the
/// paper lists for the eight pruned classes (Sec. 4) are special cases and
/// are covered by unit tests below.
pub fn single_level_volume(
    shape: &ConvShape,
    perm: &Permutation,
    tiles: &RealTiles,
    options: &CostOptions,
) -> ArrayVolumes {
    let extents = RealTiles::full(shape);
    single_level_volume_general(shape, perm, tiles, &extents, options)
}

/// The same expression with an explicit vector of enclosing extents.
///
/// For single-level tiling the extents are the problem sizes `N_j`; for
/// multi-level tiling the extents of level `l` are the tile sizes of level
/// `l+1` (Sec. 5), and the caller multiplies by the number of outer tiles.
pub fn single_level_volume_general(
    shape: &ConvShape,
    perm: &Permutation,
    tiles: &RealTiles,
    extents: &RealTiles,
    options: &CostOptions,
) -> ArrayVolumes {
    let line = options.line_elems;
    let t = tiles.clamped(&extents.as_array());
    let stride = shape.stride as f64;

    // ---- Output: always case 1 (no partial reuse possible). Factor 2 for
    // read + write-back.
    let r_out = reuse_position(perm, |i| i.present_in_output());
    let out_vol =
        2.0 * trip_product(shape, perm, &t, extents, r_out) * output_footprint_lines(&t, line);

    // ---- Kernel: always case 1.
    let r_ker = reuse_position(perm, |i| i.present_in_kernel());
    let ker_vol = trip_product(shape, perm, &t, extents, r_ker) * kernel_footprint_lines(&t, line);

    // ---- Input: case 1 when the innermost present iterator is n or c,
    // case 2 (partial sliding-window reuse) when it is w, h, s or r.
    // Dilation widens the sliding window: stepping the s (or r) loop by one
    // tile moves the input window by `dilation` columns (rows) per kernel
    // tap, so the per-step "new data" term scales by the dilation; stepping
    // the w (or h) loop still moves by `stride` per output position. Grouped
    // convolution multiplies every input term by the number of channel
    // groups the K tile spans (`group_span`, exactly 1.0 for dense shapes).
    let dilation = shape.dilation as f64;
    let r_in = reuse_position(perm, |i| i.present_in_input());
    let at_r_in = perm.inner_to_outer()[r_in - 1];
    let outer_prod = trip_product(shape, perm, &t, extents, r_in + 1);
    let tn = t.get(LoopIndex::N);
    let tc = t.get(LoopIndex::C) * group_span(shape, t.get(LoopIndex::K));
    let th = t.get(LoopIndex::H);
    let tw = t.get(LoopIndex::W);
    let tr = t.get(LoopIndex::R);
    let ts = t.get(LoopIndex::S);
    let nh = extents.get(LoopIndex::H);
    let nw = extents.get(LoopIndex::W);
    let nr = extents.get(LoopIndex::R);
    let ns = extents.get(LoopIndex::S);
    let rows_tile = dilated_window(th, tr, stride, dilation);
    let cols_tile = dilated_window(tw, ts, stride, dilation);
    let in_vol = match at_r_in {
        LoopIndex::N | LoopIndex::C => {
            trip_product(shape, perm, &t, extents, r_in) * input_footprint_lines(shape, &t, line)
        }
        LoopIndex::W => {
            // Per full execution of the wt loop the new columns are
            // stride*(Nw - Tw), plus the first tile's full window.
            let partial = tn * tc * rows_tile * lines(stride * (nw - tw).max(0.0), line);
            let first = tn * tc * rows_tile * lines(cols_tile, line);
            outer_prod * (partial + first)
        }
        LoopIndex::S => {
            let partial = tn * tc * rows_tile * lines(dilation * (ns - ts).max(0.0), line);
            let first = tn * tc * rows_tile * lines(cols_tile, line);
            outer_prod * (partial + first)
        }
        LoopIndex::H => {
            let partial = tn * tc * (stride * (nh - th).max(0.0)) * lines(cols_tile, line);
            let first = tn * tc * rows_tile * lines(cols_tile, line);
            outer_prod * (partial + first)
        }
        LoopIndex::R => {
            let partial = tn * tc * (dilation * (nr - tr).max(0.0)) * lines(cols_tile, line);
            let first = tn * tc * rows_tile * lines(cols_tile, line);
            outer_prod * (partial + first)
        }
        LoopIndex::K => unreachable!("k is never present in the input tensor"),
    };

    ArrayVolumes { input: in_vol, kernel: ker_vol, output: out_vol }
}

/// The capacity constraint of Eq. 4 as a `g(T) <= 0` value:
/// `footprint(T) - capacity`.
pub fn capacity_constraint(shape: &ConvShape, tiles: &RealTiles, capacity: f64) -> f64 {
    total_footprint(shape, tiles) - capacity
}

/// Convenience: evaluate the single-level volume on integer tile sizes.
pub fn single_level_volume_int(
    shape: &ConvShape,
    perm: &Permutation,
    tiles: &TileSizes,
    options: &CostOptions,
) -> ArrayVolumes {
    single_level_volume(shape, perm, &RealTiles::from(tiles), options)
}

/// Sum of `N_j / T_j` trip counts over all seven loops — used in tests and by
/// the pruning analysis to reason about dominance.
pub fn total_tiles(shape: &ConvShape, tiles: &RealTiles) -> f64 {
    ALL_INDICES
        .iter()
        .map(|&idx| (shape.extent(idx) as f64 / tiles.get(idx).max(1e-12)).max(1.0))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(2, 16, 8, 3, 3, 12, 12, 1).unwrap()
    }

    fn tiles() -> RealTiles {
        RealTiles::from_array([1.0, 4.0, 2.0, 3.0, 3.0, 4.0, 6.0])
    }

    /// Closed form of Eq. 5 for class 1 ⟨{kt,ct,rt,st},{nt,ht},wt⟩.
    fn eq5_reference(s: &ConvShape, t: &RealTiles) -> f64 {
        let (nn, nk, nc, nr, ns, nh, nw) =
            (s.n as f64, s.k as f64, s.c as f64, s.r as f64, s.s as f64, s.h as f64, s.w as f64);
        let (tn, tk, tc, tr, ts, th, tw) = (
            t.get(LoopIndex::N),
            t.get(LoopIndex::K),
            t.get(LoopIndex::C),
            t.get(LoopIndex::R),
            t.get(LoopIndex::S),
            t.get(LoopIndex::H),
            t.get(LoopIndex::W),
        );
        (nk / tk)
            * (nc / tc)
            * (nr / tr)
            * (ns / ts)
            * (tk * tc * tr * ts
                + (nn / tn)
                    * (nh / th)
                    * (2.0 * (nw / tw) * tn * tk * th * tw
                        + tn * tc * (th + tr - 1.0) * (nw + ts - 1.0)))
    }

    #[test]
    fn matches_eq5_for_class1_representative() {
        let s = shape();
        let t = tiles();
        let perm = Permutation::parse("kcrsnhw").unwrap();
        let dv = single_level_volume(&s, &perm, &t, &CostOptions::default());
        let reference = eq5_reference(&s, &t);
        assert!(
            (dv.total() - reference).abs() / reference < 1e-12,
            "got {} expected {}",
            dv.total(),
            reference
        );
    }

    #[test]
    fn matches_innermost_st_expressions() {
        // Class 3 ⟨{nt,kt,ht,wt},{ct,rt},st⟩ — Sec. 4 "Innermost st".
        let s = shape();
        let t = tiles();
        let perm = Permutation::parse("nkhwcrs").unwrap();
        let dv = single_level_volume(&s, &perm, &t, &CostOptions::default());
        let (nn, nk, nc, nr, ns, nh, nw) =
            (s.n as f64, s.k as f64, s.c as f64, s.r as f64, s.s as f64, s.h as f64, s.w as f64);
        let (tn, tk, tc, tr, ts, th, tw) = (
            t.get(LoopIndex::N),
            t.get(LoopIndex::K),
            t.get(LoopIndex::C),
            t.get(LoopIndex::R),
            t.get(LoopIndex::S),
            t.get(LoopIndex::H),
            t.get(LoopIndex::W),
        );
        let trips_all =
            (nn / tn) * (nk / tk) * (nc / tc) * (nr / tr) * (ns / ts) * (nh / th) * (nw / tw);
        let ker = trips_all * tk * tc * tr * ts;
        let input = (nn / tn)
            * (nk / tk)
            * (nc / tc)
            * (nr / tr)
            * (nh / th)
            * (nw / tw)
            * tn
            * tc
            * (th + tr - 1.0)
            * (tw + ns - 1.0);
        let out = 2.0 * (nn / tn) * (nk / tk) * (nh / th) * (nw / tw) * tn * tk * th * tw;
        assert!((dv.kernel - ker).abs() / ker < 1e-12);
        assert!((dv.input - input).abs() / input < 1e-12, "in {} vs {}", dv.input, input);
        assert!((dv.output - out).abs() / out < 1e-12);
    }

    #[test]
    fn matches_innermost_kt_with_wt_second() {
        // ⟨{nt,ct,ht,rt,st}, wt, kt⟩ — the In term loses the Nk/Tk factor.
        let s = shape();
        let t = tiles();
        let perm = Permutation::parse("nchrswk").unwrap();
        let dv = single_level_volume(&s, &perm, &t, &CostOptions::default());
        let (nn, nk, nc, nr, ns, nh, nw) =
            (s.n as f64, s.k as f64, s.c as f64, s.r as f64, s.s as f64, s.h as f64, s.w as f64);
        let (tn, tk, tc, tr, ts, th, tw) = (
            t.get(LoopIndex::N),
            t.get(LoopIndex::K),
            t.get(LoopIndex::C),
            t.get(LoopIndex::R),
            t.get(LoopIndex::S),
            t.get(LoopIndex::H),
            t.get(LoopIndex::W),
        );
        let expected_in = (nn / tn)
            * (nc / tc)
            * (nr / tr)
            * (ns / ts)
            * (nh / th)
            * tn
            * tc
            * (th + tr - 1.0)
            * (nw + ts - 1.0);
        assert!((dv.input - expected_in).abs() / expected_in < 1e-12);
        let trips_all =
            (nn / tn) * (nk / tk) * (nc / tc) * (nr / tr) * (ns / ts) * (nh / th) * (nw / tw);
        assert!((dv.kernel - trips_all * tk * tc * tr * ts).abs() / dv.kernel < 1e-12);
        assert!((dv.output - 2.0 * trips_all * tn * tk * th * tw).abs() / dv.output < 1e-12);
    }

    #[test]
    fn untiled_execution_moves_each_tensor_once() {
        let s = shape();
        let t = RealTiles::full(&s);
        for perm_text in ["nkcrshw", "kcrsnhw", "whsrcnk"] {
            let perm = Permutation::parse(perm_text).unwrap();
            let dv = single_level_volume(&s, &perm, &t, &CostOptions::default());
            assert!((dv.kernel - s.kernel_elems() as f64).abs() < 1e-9);
            assert!((dv.output - 2.0 * s.output_elems() as f64).abs() < 1e-9);
            // Input footprint for the full problem equals the input size.
            assert!((dv.input - s.input_elems() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn members_of_a_pruned_class_have_identical_cost() {
        // All 48 members of ⟨{kt,ct,rt,st},{nt,ht},wt⟩ share one cost expression.
        let s = shape();
        let t = tiles();
        let reference = single_level_volume(
            &s,
            &Permutation::parse("kcrsnhw").unwrap(),
            &t,
            &CostOptions::default(),
        )
        .total();
        for outer in ["kcrs", "srck", "crsk", "rskc"] {
            for mid in ["nh", "hn"] {
                let text: String = format!("{outer}{mid}w");
                let p = Permutation::parse(&text).unwrap();
                let dv = single_level_volume(&s, &p, &t, &CostOptions::default()).total();
                assert!(
                    (dv - reference).abs() / reference < 1e-12,
                    "permutation {text} deviates: {dv} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn nt_above_kt_never_beats_wt_above_kt() {
        // Sec. 4: ⟨..., nt, kt⟩ is dominated by ⟨..., wt, kt⟩ for any tile sizes.
        let s = shape();
        let opts = CostOptions::default();
        let wt_kt = Permutation::parse("nchrswk").unwrap();
        let nt_kt = Permutation::parse("wchrsnk").unwrap();
        for t in [
            tiles(),
            RealTiles::from_array([1.0, 8.0, 4.0, 1.0, 3.0, 6.0, 2.0]),
            RealTiles::from_array([2.0, 2.0, 8.0, 3.0, 1.0, 12.0, 3.0]),
        ] {
            let a = single_level_volume(&s, &wt_kt, &t, &opts).total();
            let b = single_level_volume(&s, &nt_kt, &t, &opts).total();
            assert!(a <= b + 1e-9, "wt,kt {a} should dominate nt,kt {b}");
        }
    }

    #[test]
    fn capacity_constraint_matches_footprint() {
        let s = shape();
        let t = tiles();
        let fp = total_footprint(&s, &t);
        assert!(capacity_constraint(&s, &t, fp).abs() < 1e-9);
        assert!(capacity_constraint(&s, &t, fp + 1.0) < 0.0);
        assert!(capacity_constraint(&s, &t, fp - 1.0) > 0.0);
        // Footprint matches the integer computation in conv-spec.
        let int_t = t.to_tile_sizes();
        assert_eq!(int_t.footprint(&s) as f64, fp);
    }

    #[test]
    fn stride_two_increases_input_footprint_and_volume() {
        let s1 = ConvShape::new(1, 8, 8, 3, 3, 10, 10, 1).unwrap();
        let s2 = ConvShape::new(1, 8, 8, 3, 3, 10, 10, 2).unwrap();
        let t = RealTiles::from_array([1.0, 4.0, 4.0, 3.0, 3.0, 5.0, 5.0]);
        assert!(input_footprint(&s2, &t) > input_footprint(&s1, &t));
        let perm = Permutation::parse("kcrsnhw").unwrap();
        let v1 = single_level_volume(&s1, &perm, &t, &CostOptions::default()).input;
        let v2 = single_level_volume(&s2, &perm, &t, &CostOptions::default()).input;
        assert!(v2 > v1);
    }

    #[test]
    fn spatial_locality_extension_reduces_counted_volume() {
        let s = shape();
        let t = tiles();
        let perm = Permutation::parse("kcrsnhw").unwrap();
        let elems = single_level_volume(&s, &perm, &t, &CostOptions { line_elems: 1 }).total();
        let lines = single_level_volume(&s, &perm, &t, &CostOptions { line_elems: 16 }).total();
        assert!(
            lines < elems,
            "line-granular volume {lines} should be below element volume {elems}"
        );
    }

    #[test]
    fn bigger_tiles_reduce_volume_for_fixed_permutation() {
        let s = shape();
        let perm = Permutation::parse("kcrsnhw").unwrap();
        let small = RealTiles::from_array([1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
        let large = RealTiles::from_array([1.0, 8.0, 4.0, 3.0, 3.0, 6.0, 6.0]);
        let dv_small = single_level_volume(&s, &perm, &small, &CostOptions::default()).total();
        let dv_large = single_level_volume(&s, &perm, &large, &CostOptions::default()).total();
        assert!(dv_large < dv_small);
    }

    #[test]
    fn dilation_widens_input_footprint_and_volume() {
        let dense = ConvShape::new(1, 8, 8, 3, 3, 10, 10, 1).unwrap();
        let dilated = dense.with_dilation(2).unwrap();
        let t = RealTiles::from_array([1.0, 4.0, 4.0, 3.0, 3.0, 5.0, 5.0]);
        // Rows: dense (5-1)+3 = 7; dilated (5-1) + (3-1)*2+1 = 9.
        assert!(input_footprint(&dilated, &t) > input_footprint(&dense, &t));
        assert_eq!(input_footprint(&dilated, &t), 1.0 * 4.0 * 9.0 * 9.0);
        for perm_text in ["kcrsnhw", "nkhwcrs", "nchrswk"] {
            let perm = Permutation::parse(perm_text).unwrap();
            let dv_dense = single_level_volume(&dense, &perm, &t, &CostOptions::default());
            let dv_dil = single_level_volume(&dilated, &perm, &t, &CostOptions::default());
            assert!(
                dv_dil.input >= dv_dense.input,
                "{perm_text}: dilated input {} below dense {}",
                dv_dil.input,
                dv_dense.input
            );
            // Kernel and output volumes are unaffected by dilation.
            assert_eq!(dv_dil.kernel, dv_dense.kernel);
            assert_eq!(dv_dil.output, dv_dense.output);
        }
    }

    #[test]
    fn grouped_shapes_shrink_kernel_volume_but_keep_input_whole() {
        // Untiled execution must move each tensor exactly once, for grouped
        // and depthwise shapes too: the per-group C reduction shrinks the
        // kernel by 1/groups while the group-span factor restores the full
        // input channel count.
        for groups in [2, 4, 8] {
            let s = ConvShape::new_general(1, 8, 8, 3, 3, 10, 10, 1, 1, groups).unwrap();
            let t = RealTiles::full(&s);
            for perm_text in ["nkcrshw", "kcrsnhw", "whsrcnk"] {
                let perm = Permutation::parse(perm_text).unwrap();
                let dv = single_level_volume(&s, &perm, &t, &CostOptions::default());
                assert!((dv.kernel - s.kernel_elems() as f64).abs() < 1e-9, "groups {groups}");
                assert!((dv.input - s.input_elems() as f64).abs() < 1e-9, "groups {groups}");
                assert!((dv.output - 2.0 * s.output_elems() as f64).abs() < 1e-9);
            }
        }
        let dw = ConvShape::depthwise(16, 12, 3, 1);
        let t = RealTiles::full(&dw);
        let dv = single_level_volume(
            &dw,
            &Permutation::parse("kcrsnhw").unwrap(),
            &t,
            &CostOptions::default(),
        );
        assert!((dv.kernel - (16.0 * 9.0)).abs() < 1e-9);
        assert!((dv.input - dw.input_elems() as f64).abs() < 1e-9);
    }

    #[test]
    fn group_span_scales_partial_k_tiles() {
        let s = ConvShape::new_general(1, 16, 8, 3, 3, 10, 10, 1, 1, 4).unwrap();
        // K tile of one group: input footprint covers one channel band.
        let one = RealTiles::from_array([1.0, 4.0, 2.0, 3.0, 3.0, 5.0, 5.0]);
        let all = one.with(LoopIndex::K, 16.0);
        assert!((input_footprint(&s, &all) - 4.0 * input_footprint(&s, &one)).abs() < 1e-9);
        // The dense shape is insensitive to the K tile.
        let dense = ConvShape::new(1, 16, 8, 3, 3, 10, 10, 1).unwrap();
        assert_eq!(input_footprint(&dense, &one), input_footprint(&dense, &all));
    }

    #[test]
    fn dense_formulas_are_bit_identical_to_legacy_closed_forms() {
        // The generalized expressions must reproduce the pre-generalization
        // values exactly (not just approximately) when dilation == 1 and
        // groups == 1 — the property the schedule cache relies on.
        let s = ConvShape::new(2, 16, 8, 3, 3, 12, 12, 2).unwrap();
        for t in [
            tiles(),
            RealTiles::from_array([1.7, 4.2, 2.9, 3.0, 1.5, 4.8, 6.3]),
            RealTiles::from_array([2.0, 16.0, 8.0, 3.0, 3.0, 12.0, 12.0]),
        ] {
            let stride = s.stride as f64;
            let legacy_rows = (t.get(LoopIndex::H) - 1.0) * stride + t.get(LoopIndex::R);
            let legacy_cols = (t.get(LoopIndex::W) - 1.0) * stride + t.get(LoopIndex::S);
            let legacy_in = t.get(LoopIndex::N) * t.get(LoopIndex::C) * legacy_rows * legacy_cols;
            assert_eq!(input_footprint(&s, &t), legacy_in);
        }
    }

    #[test]
    fn real_tiles_conversions() {
        let t = TileSizes::from_array([1, 2, 3, 4, 5, 6, 7]);
        let r: RealTiles = (&t).into();
        assert_eq!(r.get(LoopIndex::W), 7.0);
        assert_eq!(r.to_tile_sizes(), t);
        let clamped = RealTiles::from_array([0.0, 99.0, 3.0, 4.0, 5.0, 6.0, 7.0])
            .clamped(&[4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0]);
        assert_eq!(clamped.get(LoopIndex::N), 1.0);
        assert_eq!(clamped.get(LoopIndex::K), 4.0);
        assert!(total_tiles(&shape(), &RealTiles::full(&shape())) == 1.0);
    }
}
