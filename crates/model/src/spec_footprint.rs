//! Closed-form per-level footprint expressions for generalized [`Spec`]
//! problems.
//!
//! Each [`Spec`] variant embeds into the conv2d loop nest
//! ([`Spec::embedded_conv_shape`]), so its working set at any tiling level is
//! already priced by [`TileSizes::footprint`] on the embedded shape. This
//! module writes the same quantity in each problem's *native* variables —
//! `Tm·Tk + Tk·Tn + Tm·Tn` for matmul, the sliding-window slab for pooling,
//! the stream pair for elementwise — and tests pin the two forms equal. The
//! native forms document what the capacity constraint (Eq. 4) means per
//! problem class and give callers a way to reason about footprints without
//! materializing the embedding.

use conv_spec::{EwOp, LoopIndex, Spec, TileSizes};

/// Footprint in elements of one tile described by `tiles` (a tile vector over
/// the *embedded* conv nest) for the given spec.
///
/// For `Spec::Conv` this is exactly [`TileSizes::footprint`]. For the other
/// variants it evaluates the native closed form below; the result is equal to
/// the embedded conv footprint for every valid tile vector.
pub fn spec_footprint(spec: &Spec, tiles: &TileSizes) -> usize {
    match *spec {
        Spec::Conv(shape) => tiles.footprint(&shape),
        Spec::Matmul { .. } => {
            // Under the embedding m→K, k→C, n→W the three operand slices are
            // A (m×k), B (k×n), C (m×n).
            let tm = tiles.get(LoopIndex::K);
            let tk = tiles.get(LoopIndex::C);
            let tn = tiles.get(LoopIndex::W);
            matmul_footprint(tm, tn, tk)
        }
        Spec::Pool { window: _, stride, .. } => {
            let tn = tiles.get(LoopIndex::N);
            let tc = tiles.get(LoopIndex::K); // channels ride the K axis
            let th = tiles.get(LoopIndex::H);
            let tw = tiles.get(LoopIndex::W);
            let tr = tiles.get(LoopIndex::R);
            let ts = tiles.get(LoopIndex::S);
            pool_footprint(tn, tc, th, tw, tr, ts, stride)
        }
        Spec::Elementwise { op, .. } => elementwise_footprint(op, tiles.get(LoopIndex::W)),
    }
}

/// Matmul tile footprint: `Tm·Tk + Tk·Tn + Tm·Tn` (A, B, and C slices).
pub fn matmul_footprint(tm: usize, tn: usize, tk: usize) -> usize {
    tm * tk + tk * tn + tm * tn
}

/// Pooling tile footprint for a `Tr×Ts` sub-window tile over a `Th×Tw` output
/// tile of `Tc` channels (batch tile `Tn`):
///
/// input slab `Tn·Tc·((Th-1)·stride + Tr)·((Tw-1)·stride + Ts)`
/// + window state `Tc·Tr·Ts` + output `Tn·Tc·Th·Tw`.
///
/// The "window state" term is the depthwise-embedded kernel slice; a real
/// pooling kernel holds no weights, but the certified capacity envelope keeps
/// the term so pool schedules stay interchangeable with depthwise-conv
/// schedules in the database.
pub fn pool_footprint(
    tn: usize,
    tc: usize,
    th: usize,
    tw: usize,
    tr: usize,
    ts: usize,
    stride: usize,
) -> usize {
    let in_h = (th - 1) * stride + tr;
    let in_w = (tw - 1) * stride + ts;
    tn * tc * in_h * in_w + tc * tr * ts + tn * tc * th * tw
}

/// Elementwise tile footprint for a contiguous tile of `t` elements: one
/// input stream + one output stream (`2t`), plus the unit kernel slot the
/// conv embedding carries (`+1`). Binary ops (`Add`, `Mul`) stream a second
/// input that the 7-loop embedding cannot express; we charge it explicitly so
/// the capacity check stays sound for them.
pub fn elementwise_footprint(op: EwOp, t: usize) -> usize {
    let extra_input = if op.arity() == 2 { t } else { 0 };
    2 * t + 1 + extra_input
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::{ConvShape, DType, PoolKind};

    fn embedded_tiles(pairs: &[(LoopIndex, usize)]) -> TileSizes {
        let mut t = TileSizes::ones();
        for &(idx, v) in pairs {
            t.set(idx, v);
        }
        t
    }

    #[test]
    fn matmul_native_form_equals_embedded_conv_footprint() {
        let spec = Spec::Matmul { m: 64, n: 256, k: 128, dtype: DType::F32 };
        let shape = spec.embedded_conv_shape();
        for (tm, tn, tk) in [(1, 1, 1), (4, 8, 16), (64, 256, 128), (3, 7, 5)] {
            let tiles =
                embedded_tiles(&[(LoopIndex::K, tm), (LoopIndex::C, tk), (LoopIndex::W, tn)]);
            assert_eq!(spec_footprint(&spec, &tiles), tiles.footprint(&shape));
            assert_eq!(matmul_footprint(tm, tn, tk), tiles.footprint(&shape));
        }
    }

    #[test]
    fn pool_native_form_equals_embedded_conv_footprint() {
        let spec = Spec::Pool {
            kind: PoolKind::Max,
            n: 2,
            channels: 32,
            h: 16,
            w: 16,
            window: 3,
            stride: 2,
        };
        let shape = spec.embedded_conv_shape();
        for (tc, th, tw, trs) in [(1, 1, 1, 1), (8, 4, 4, 3), (32, 16, 16, 3)] {
            // The depthwise embedding puts channels on K (its per-group C
            // extent is 1), the window on R/S.
            let tiles = embedded_tiles(&[
                (LoopIndex::N, 2),
                (LoopIndex::K, tc),
                (LoopIndex::H, th),
                (LoopIndex::W, tw),
                (LoopIndex::R, trs),
                (LoopIndex::S, trs),
            ]);
            let embedded = tiles.footprint(&shape);
            // The embedded depthwise footprint charges the input with one
            // channel band per spanned group; with per-group K extent 1 the
            // span equals Tc, matching the native form exactly.
            assert_eq!(spec_footprint(&spec, &tiles), embedded);
        }
    }

    #[test]
    fn elementwise_unary_form_equals_embedded_conv_footprint() {
        let spec = Spec::Elementwise { op: EwOp::Relu, len: 1024, strided: false };
        let shape = spec.embedded_conv_shape();
        for t in [1, 7, 64, 1024] {
            let tiles = embedded_tiles(&[(LoopIndex::W, t)]);
            assert_eq!(spec_footprint(&spec, &tiles), tiles.footprint(&shape));
        }
    }

    #[test]
    fn elementwise_binary_charges_the_second_stream() {
        // The conv embedding sees one input; binary ops stream two. The
        // native form must be strictly larger than the embedded footprint by
        // exactly the extra stream.
        let spec = Spec::Elementwise { op: EwOp::Add, len: 512, strided: false };
        let shape = spec.embedded_conv_shape();
        let tiles = embedded_tiles(&[(LoopIndex::W, 128)]);
        assert_eq!(spec_footprint(&spec, &tiles), tiles.footprint(&shape) + 128);
    }

    #[test]
    fn conv_variant_is_the_plain_footprint() {
        let shape = ConvShape::new(1, 32, 16, 3, 3, 28, 28, 1).unwrap();
        let spec = Spec::Conv(shape);
        let tiles = embedded_tiles(&[
            (LoopIndex::K, 8),
            (LoopIndex::C, 4),
            (LoopIndex::R, 3),
            (LoopIndex::S, 3),
            (LoopIndex::H, 7),
            (LoopIndex::W, 14),
        ]);
        assert_eq!(spec_footprint(&spec, &tiles), tiles.footprint(&shape));
    }
}
