//! Pruning of tile-loop permutations (Sec. 4 of the paper).
//!
//! Of the 7! = 5040 permutations of the seven tile loops, algebraic analysis
//! of the cost expressions shows that only **eight equivalence classes** need
//! to be considered: every other permutation is either cost-equivalent to a
//! member of one of these classes or dominated by one (its optimal cost can
//! never be lower). The classes, written as in the paper with the innermost
//! loop on the right and `{..}` denoting "any order within the band":
//!
//! | # | class |
//! |---|-------|
//! | 1 | ⟨{kt, ct, rt, st}, {nt, ht}, wt⟩ |
//! | 2 | ⟨{kt, ct, rt, st}, {nt, wt}, ht⟩ |
//! | 3 | ⟨{nt, kt, ht, wt}, {ct, rt}, st⟩ |
//! | 4 | ⟨{nt, kt, ht, wt}, {ct, st}, rt⟩ |
//! | 5 | ⟨{nt, ct, ht, rt, st}, wt, kt⟩ |
//! | 6 | ⟨{nt, ct, wt, rt, st}, ht, kt⟩ |
//! | 7 | ⟨{nt, ct, ht, wt, rt}, st, kt⟩ |
//! | 8 | ⟨{nt, ct, ht, wt, st}, rt, kt⟩ |
//!
//! The classification is purely structural (which index is innermost, which
//! band sits above it), so it is unchanged by the generalized shapes: stride,
//! dilation, and channel groups only rescale the per-class cost expressions
//! (wider input halos, a `1/groups` smaller C reduction, a group-span factor
//! on the input terms) without reordering which classes can dominate. The
//! numeric dominance checks below are exercised against dilated and grouped
//! shapes as well as the paper's dense ones.

use conv_spec::{ConvShape, LoopIndex, Permutation};
use serde::{Deserialize, Serialize};

use crate::cost::{single_level_volume, CostOptions, RealTiles};

/// One of the eight pruned permutation classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermutationClass {
    /// Class number, 1..=8, in the order the paper lists them.
    pub id: usize,
    /// A human-readable description of the class structure.
    pub description: String,
    /// The representative permutation used for tile-size optimization (any
    /// member of the class has exactly the same cost expression).
    pub representative: Permutation,
    /// The innermost tile-loop index of every member of the class.
    pub innermost: LoopIndex,
    /// Number of concrete permutations that belong to the class.
    pub member_count: usize,
}

impl std::fmt::Display for PermutationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class {}: {} (rep {})", self.id, self.description, self.representative)
    }
}

/// The eight pruned permutation classes of Sec. 4, with representatives.
pub fn pruned_classes() -> Vec<PermutationClass> {
    let mk =
        |id: usize, desc: &str, rep: &str, innermost: LoopIndex, members: usize| PermutationClass {
            id,
            description: desc.to_string(),
            representative: Permutation::parse(rep).expect("valid representative"),
            innermost,
            member_count: members,
        };
    vec![
        mk(1, "<{kt,ct,rt,st},{nt,ht},wt>", "kcrsnhw", LoopIndex::W, 24 * 2),
        mk(2, "<{kt,ct,rt,st},{nt,wt},ht>", "kcrsnwh", LoopIndex::H, 24 * 2),
        mk(3, "<{nt,kt,ht,wt},{ct,rt},st>", "nkhwcrs", LoopIndex::S, 24 * 2),
        mk(4, "<{nt,kt,ht,wt},{ct,st},rt>", "nkhwcsr", LoopIndex::R, 24 * 2),
        mk(5, "<{nt,ct,ht,rt,st},wt,kt>", "nchrswk", LoopIndex::K, 120),
        mk(6, "<{nt,ct,wt,rt,st},ht,kt>", "ncwrshk", LoopIndex::K, 120),
        mk(7, "<{nt,ct,ht,wt,rt},st,kt>", "nchwrsk", LoopIndex::K, 120),
        mk(8, "<{nt,ct,ht,wt,st},rt,kt>", "nchwsrk", LoopIndex::K, 120),
    ]
}

/// Determine which pruned class (if any) an arbitrary permutation belongs to.
///
/// Membership is purely structural: the innermost loop and, where relevant,
/// the band immediately above it must match the class definition. A
/// permutation that belongs to no class is one of the dominated cases that
/// the optimization never needs to consider.
pub fn classify(perm: &Permutation) -> Option<usize> {
    use LoopIndex::*;
    let inner = perm.inner_to_outer();
    let p1 = inner[0];
    let p2 = inner[1];
    let p3 = inner[2];
    let band2: [LoopIndex; 2] = [p2, p3];
    let band_contains = |band: &[LoopIndex; 2], a: LoopIndex, b: LoopIndex| {
        (band[0] == a && band[1] == b) || (band[0] == b && band[1] == a)
    };
    match p1 {
        W if band_contains(&band2, N, H) => Some(1),
        H if band_contains(&band2, N, W) => Some(2),
        S if band_contains(&band2, C, R) => Some(3),
        R if band_contains(&band2, C, S) => Some(4),
        K => match p2 {
            W => Some(5),
            H => Some(6),
            S => Some(7),
            R => Some(8),
            _ => None,
        },
        _ => None,
    }
}

/// Numerically check whether two permutations have identical cost expressions
/// by evaluating them on a set of sampled tile sizes for a shape.
pub fn cost_equivalent(
    shape: &ConvShape,
    a: &Permutation,
    b: &Permutation,
    samples: &[RealTiles],
) -> bool {
    let opts = CostOptions::default();
    samples.iter().all(|t| {
        let va = single_level_volume(shape, a, t, &opts).total();
        let vb = single_level_volume(shape, b, t, &opts).total();
        (va - vb).abs() <= 1e-9 * va.abs().max(vb.abs()).max(1.0)
    })
}

/// A small deterministic set of tile-size samples spanning the problem space,
/// used by equivalence / dominance checks.
pub fn sample_tiles(shape: &ConvShape, count: usize) -> Vec<RealTiles> {
    let mut out = Vec::with_capacity(count);
    let extents = shape.extents();
    // A simple low-discrepancy-ish sweep: geometric fractions of each extent.
    for i in 0..count {
        let mut t = [1.0f64; 7];
        for (j, &e) in extents.iter().enumerate() {
            let frac = ((i * 7 + j * 3 + 1) % 11) as f64 / 11.0;
            let v = (e as f64).powf(0.2 + 0.8 * frac).round().clamp(1.0, e as f64);
            t[j] = v;
        }
        out.push(RealTiles::from_array(t));
    }
    out
}

/// For a given shape, verify (numerically, over sampled tile sizes) that the
/// minimum cost over the eight pruned representatives is no worse than the
/// cost of `perm` at each sample — i.e. that considering only the pruned
/// classes cannot lose the optimum. Returns the largest observed ratio
/// `min_pruned / other` (≤ 1 + tolerance when pruning is sound).
pub fn dominance_ratio(shape: &ConvShape, perm: &Permutation, samples: &[RealTiles]) -> f64 {
    let opts = CostOptions::default();
    let classes = pruned_classes();
    let mut worst: f64 = 0.0;
    for t in samples {
        let other = single_level_volume(shape, perm, t, &opts).total();
        let best_pruned = classes
            .iter()
            .map(|c| single_level_volume(shape, &c.representative, t, &opts).total())
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best_pruned / other);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(2, 16, 8, 3, 3, 14, 14, 1).unwrap()
    }

    #[test]
    fn there_are_exactly_eight_classes() {
        let classes = pruned_classes();
        assert_eq!(classes.len(), 8);
        let ids: Vec<usize> = classes.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // Representatives are themselves classified into their own class.
        for c in &classes {
            assert_eq!(classify(&c.representative), Some(c.id), "{c}");
        }
    }

    #[test]
    fn class_member_counts_sum_as_in_the_paper() {
        // 4 classes of 48 members + 4 classes of 120 members = 672 permutations
        // are represented; the remaining 5040 - 672 are dominated.
        let total: usize = pruned_classes().iter().map(|c| c.member_count).sum();
        assert_eq!(total, 4 * 48 + 4 * 120);
    }

    #[test]
    fn classify_counts_members_over_all_permutations() {
        let mut counts = [0usize; 9];
        let mut unclassified = 0usize;
        for p in Permutation::enumerate_all() {
            match classify(&p) {
                Some(id) => counts[id] += 1,
                None => unclassified += 1,
            }
        }
        let classes = pruned_classes();
        for c in &classes {
            assert_eq!(counts[c.id], c.member_count, "class {} member count", c.id);
        }
        assert_eq!(unclassified + counts.iter().sum::<usize>(), 5040);
    }

    #[test]
    fn all_members_of_each_class_are_cost_equivalent_to_the_representative() {
        let s = shape();
        let samples = sample_tiles(&s, 6);
        let classes = pruned_classes();
        let mut checked = 0;
        for p in Permutation::enumerate_all() {
            if let Some(id) = classify(&p) {
                let rep = &classes[id - 1].representative;
                assert!(
                    cost_equivalent(&s, rep, &p, &samples),
                    "permutation {p} is not cost-equivalent to its class representative {rep}"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 672);
    }

    #[test]
    fn pruned_classes_dominate_a_sample_of_other_permutations() {
        // For a selection of dominated permutations, the best pruned class is
        // never worse at any sampled tile size.
        let s = shape();
        let samples = sample_tiles(&s, 8);
        for text in ["nkcrshw", "whscrkn", "knchsrw", "crshwkn", "hwnkcrs", "swhrcnk"] {
            let p = Permutation::parse(text).unwrap();
            let ratio = dominance_ratio(&s, &p, &samples);
            assert!(ratio <= 1.0 + 1e-9, "pruned classes fail to dominate {text}: ratio {ratio}");
        }
    }

    #[test]
    fn dominance_holds_across_random_permutations_and_shapes() {
        // A broader randomized check of the pruning theorem.
        let shapes = [
            ConvShape::new(1, 32, 16, 3, 3, 28, 28, 1).unwrap(),
            ConvShape::new(1, 64, 64, 1, 1, 17, 17, 1).unwrap(),
            ConvShape::new(1, 16, 3, 7, 7, 56, 56, 2).unwrap(),
        ];
        let all = Permutation::enumerate_all();
        for (i, s) in shapes.iter().enumerate() {
            let samples = sample_tiles(s, 4);
            // Stride across the permutation list for coverage without cost.
            for p in all.iter().skip(i * 13).step_by(97) {
                let ratio = dominance_ratio(s, p, &samples);
                assert!(
                    ratio <= 1.0 + 1e-9,
                    "pruning unsound for shape {s} permutation {p}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn dominance_holds_for_dilated_and_grouped_shapes() {
        // The pruning theorem must survive the generalization: for dilated,
        // grouped, and depthwise shapes the eight representatives still
        // dominate a sweep of other permutations at sampled tile sizes.
        let shapes = [
            ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap().with_dilation(2).unwrap(),
            ConvShape::new_general(1, 16, 8, 3, 3, 14, 14, 1, 1, 4).unwrap(),
            ConvShape::depthwise(16, 14, 3, 1),
            ConvShape::depthwise(16, 15, 3, 1).with_dilation(2).unwrap(),
        ];
        let all = Permutation::enumerate_all();
        for (i, s) in shapes.iter().enumerate() {
            let samples = sample_tiles(s, 4);
            for p in all.iter().skip(i * 7).step_by(131) {
                let ratio = dominance_ratio(s, p, &samples);
                assert!(
                    ratio <= 1.0 + 1e-9,
                    "pruning unsound for generalized shape {s} permutation {p}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn classify_rejects_dominated_structures() {
        // nt innermost and ct innermost are always dominated (Sec. 4).
        assert_eq!(classify(&Permutation::parse("kcrshwn").unwrap()), None);
        assert_eq!(classify(&Permutation::parse("nkrshwc").unwrap()), None);
        // kt innermost but nt or ct immediately above: dominated.
        assert_eq!(classify(&Permutation::parse("wchrsnk").unwrap()), None);
        assert_eq!(classify(&Permutation::parse("whrsnck").unwrap()), None);
    }

    #[test]
    fn sample_tiles_are_within_bounds() {
        let s = shape();
        for t in sample_tiles(&s, 10) {
            for &idx in &conv_spec::ALL_INDICES {
                assert!(t.get(idx) >= 1.0);
                assert!(t.get(idx) <= s.extent(idx) as f64);
            }
        }
    }
}
