//! Analytical data-movement modeling for multi-level tiled CNNs.
//!
//! This crate implements the paper's central contribution:
//!
//! * [`cost`] — parametric (in the tile sizes) expressions for the volume of
//!   data moved between two adjacent levels of the memory hierarchy during a
//!   single-level tiled execution of the conv2d loop nest, for **any**
//!   permutation of the seven tile loops (Sec. 3), together with the
//!   cache-capacity constraint (Eq. 4),
//! * [`prune`] — the algebraic pruning argument of Sec. 4 that reduces the
//!   7! = 5040 tile-loop permutations to eight equivalence classes guaranteed
//!   to contain a global optimum,
//! * [`multilevel`] — assembly of per-level cost expressions for multi-level
//!   tiling (Sec. 5), including the parallel adaptation of Sec. 7 and the
//!   bandwidth-scaled min–max objective,
//! * [`fused`] — a cross-layer extension pricing the fusion of a producer →
//!   consumer pair (the intermediate tensor's store + load at the DRAM
//!   boundary is deleted when the joint working set fits the same certified
//!   capacity envelope), used by `mopt_graph`'s fusion-aware planner,
//! * [`mod@move_cost`] — Morello-style pricing of layout transforms (lines
//!   touched, non-contiguity penalty, prefetch discount) and per-tensor
//!   traffic/footprint factors, composing the one-time packing cost into the
//!   same bottleneck objective (exactly zero at the paper-default layouts),
//! * [`mod@spec_footprint`] — closed-form per-level footprints for the
//!   generalized problem IR (matmul `Tm·Tk + Tk·Tn + Tm·Tn`, pooling slabs,
//!   elementwise streams), pinned equal to the embedded conv footprints.
//!
//! The expressions are evaluated on real-valued tile sizes so that they can be
//! used directly as objectives/constraints of the non-linear solver, and on
//! integer tile sizes for configuration ranking and validation against the
//! cache simulator.
//!
//! # Generalized convolution
//!
//! The cost expressions cover strided, **dilated**, and **grouped** (incl.
//! depthwise) convolutions: dilation widens the input sliding window from
//! `(R-1)` to `(R-1)·dilation` halo rows, grouping shrinks the C reduction
//! and the kernel footprint by `1/groups` while a *group-span* factor charges
//! the input footprint with one channel band per group the K tile reaches.
//! For `dilation == 1, groups == 1` every expression is bit-identical to the
//! paper's dense model.
//!
//! # Example
//!
//! ```
//! use conv_spec::{ConvShape, Permutation};
//! use mopt_model::cost::{single_level_volume, RealTiles, CostOptions};
//!
//! let shape = ConvShape::new(1, 64, 32, 3, 3, 56, 56, 1)?;
//! let perm = Permutation::parse("kcrsnhw")?; // class 1 representative
//! let tiles = RealTiles::from_array([1.0, 16.0, 8.0, 3.0, 3.0, 14.0, 28.0]);
//! let dv = single_level_volume(&shape, &perm, &tiles, &CostOptions::default());
//! assert!(dv.total() > 0.0);
//!
//! // A dilated variant of the same layer moves at least as much input data
//! // (wider halo), while the kernel volume is unchanged.
//! let dilated = shape.with_dilation(2)?;
//! let dv2 = single_level_volume(&dilated, &perm, &tiles, &CostOptions::default());
//! assert!(dv2.input >= dv.input);
//! assert_eq!(dv2.kernel, dv.kernel);
//!
//! // A depthwise shape's kernel footprint shrinks by 1/groups.
//! let dw = ConvShape::depthwise(64, 56, 3, 1);
//! let full = RealTiles::full(&dw);
//! let dv_dw = single_level_volume(&dw, &perm, &full, &CostOptions::default());
//! assert_eq!(dv_dw.kernel, (64 * 9) as f64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod fused;
pub mod move_cost;
pub mod multilevel;
pub mod prune;
pub mod spec_footprint;

pub use cost::{single_level_volume, ArrayVolumes, CostOptions, RealTiles};
pub use fused::{
    evaluate_fusion, evaluate_fusion_for_threads, fusable_pair, FusabilityCheck, FusionEvaluation,
};
pub use move_cost::{
    layout_move_costs, layout_move_total, stream_traffic, traffic_factor, transform_level,
    MoveCost, NONCONTIG_PENALTY, PREFETCH_DISCOUNT,
};
pub use multilevel::{CostBreakdown, LevelCost, MultiLevelModel, ParallelSpec};
pub use prune::{pruned_classes, PermutationClass};
pub use spec_footprint::{elementwise_footprint, matmul_footprint, pool_footprint, spec_footprint};
