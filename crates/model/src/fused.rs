//! Fusion-aware cross-layer cost extension.
//!
//! The per-operator model (and Algorithm 1) optimizes each convolution in
//! isolation, so the intermediate tensor between a producer and its consumer
//! is always stored to memory by one schedule and re-loaded by the next —
//! for MobileNet-style depthwise → pointwise pairs this round trip is the
//! dominant avoidable traffic. This module prices *fusing* two adjacent
//! operators: the producer's output tile is consumed in-cache by the
//! consumer, deleting one store and one load of the intermediate tensor at
//! the memory boundary, provided the *joint* working set still fits the same
//! certified capacity envelope the per-operator solves used.
//!
//! The evaluation is deliberately conservative:
//!
//! * only the DRAM-boundary (L3-fill) traffic is credited — inner levels keep
//!   their per-operator volumes,
//! * the joint footprint charges the producer's and the consumer's L3 tile
//!   footprints in full (the shared intermediate tile is double-counted), so
//!   a fused plan is only accepted when both certified tiles co-reside with
//!   slack,
//! * structural feasibility ([`fusable_pair`]) requires the consumer to be a
//!   dense stride-1, dilation-1 pointwise op whose input is exactly the
//!   producer's output — the pattern whose in-cache consumption the fused
//!   executor in `conv_exec` realizes.

use conv_spec::{ConvShape, MachineModel, TileSizes, TilingLevel};
use serde::{Deserialize, Serialize};

/// Why a producer → consumer pair cannot be fused (or `Fusable`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusabilityCheck {
    /// The pair is structurally fusable.
    Fusable,
    /// The consumer is not a dense stride-1/dilation-1 pointwise op.
    ConsumerNotPointwise,
    /// The consumer's input tensor is not the producer's output tensor
    /// (channel or spatial mismatch).
    ShapeMismatch,
}

/// Structural fusability of a producer → consumer convolution pair.
///
/// Fusion (as modeled here and executed by `conv_exec`'s fused executor)
/// requires the consumer to read the intermediate tensor position-wise:
/// a dense 1x1, stride-1, dilation-1 convolution whose input dimensions are
/// exactly the producer's output dimensions. The producer may be any
/// convolution (the executable depthwise → pointwise case is a subset).
pub fn fusable_pair(producer: &ConvShape, consumer: &ConvShape) -> FusabilityCheck {
    if !consumer.is_pointwise()
        || consumer.stride != 1
        || consumer.dilation != 1
        || consumer.groups != 1
    {
        return FusabilityCheck::ConsumerNotPointwise;
    }
    if consumer.input_dims() != producer.output_dims() {
        return FusabilityCheck::ShapeMismatch;
    }
    FusabilityCheck::Fusable
}

/// The outcome of pricing one producer → consumer fusion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionEvaluation {
    /// Elements of the intermediate tensor (producer output = consumer input).
    pub intermediate_elems: f64,
    /// DRAM-boundary volume of the two operators planned separately
    /// (elements; the sum of the per-operator L3-fill volumes).
    pub unfused_volume: f64,
    /// DRAM-boundary volume when fused: the unfused volume minus the deleted
    /// store + load of the intermediate tensor.
    pub fused_volume: f64,
    /// Joint L3 footprint of the two certified tile working sets (elements).
    pub fused_footprint: f64,
    /// The capacity envelope the joint footprint was checked against
    /// (the machine's L3 capacity, the same envelope the per-operator
    /// solves certified their tiles under).
    pub capacity: f64,
    /// Whether the fusion is structurally possible *and* fits the envelope.
    pub feasible: bool,
}

impl FusionEvaluation {
    /// Elements of DRAM traffic saved by fusing (0 when infeasible).
    pub fn saving(&self) -> f64 {
        if self.feasible {
            self.unfused_volume - self.fused_volume
        } else {
            0.0
        }
    }
}

/// Price the fusion of `producer` → `consumer` on `machine`.
///
/// `producer_l3_tiles` / `consumer_l3_tiles` are the L3-level tile sizes of
/// each operator's chosen schedule (the tiles whose footprints the
/// per-operator solves certified against the L3 capacity); their joint
/// footprint must fit the same envelope for the intermediate to be consumed
/// in-cache. `producer_l3_volume` / `consumer_l3_volume` are the model's
/// DRAM-boundary (L3-fill) volumes of the two schedules.
///
/// The deleted traffic is `2 × intermediate` elements: the paper's DRAM cost
/// charges the output tensor twice (write-back + re-read) and the consumer's
/// load of the same tensor once more; fusion removes the producer-side round
/// trip entirely while the consumer-side read stays (it happens in cache).
/// Of the three movements (write, re-read as output, read as input) the two
/// that cross the DRAM boundary for scheduling reasons alone — the store and
/// the consumer's load — are credited.
pub fn evaluate_fusion(
    producer: &ConvShape,
    consumer: &ConvShape,
    producer_l3_tiles: &TileSizes,
    consumer_l3_tiles: &TileSizes,
    producer_l3_volume: f64,
    consumer_l3_volume: f64,
    machine: &MachineModel,
) -> FusionEvaluation {
    evaluate_fusion_for_threads(
        producer,
        consumer,
        producer_l3_tiles,
        consumer_l3_tiles,
        producer_l3_volume,
        consumer_l3_volume,
        machine,
        1,
    )
}

/// [`evaluate_fusion`] against the *per-thread* L3 envelope: with `threads`
/// active threads sharing the last-level cache, a fused segment's joint
/// working set must fit one thread's `1/P` capacity share
/// ([`MachineModel::capacity_per_thread`]) — co-running threads each keep
/// their own in-cache intermediate band, so the whole-cache envelope would
/// overstate what any one of them can hold. At `threads == 1` this is
/// exactly [`evaluate_fusion`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_fusion_for_threads(
    producer: &ConvShape,
    consumer: &ConvShape,
    producer_l3_tiles: &TileSizes,
    consumer_l3_tiles: &TileSizes,
    producer_l3_volume: f64,
    consumer_l3_volume: f64,
    machine: &MachineModel,
    threads: usize,
) -> FusionEvaluation {
    let intermediate = producer.output_elems() as f64;
    let unfused = producer_l3_volume + consumer_l3_volume;
    let capacity = machine.capacity_per_thread(TilingLevel::L3, threads) as f64;
    let footprint =
        (producer_l3_tiles.footprint(producer) + consumer_l3_tiles.footprint(consumer)) as f64;
    let structurally = fusable_pair(producer, consumer) == FusabilityCheck::Fusable;
    let feasible = structurally && footprint <= capacity;
    let fused = if feasible { (unfused - 2.0 * intermediate).max(0.0) } else { unfused };
    FusionEvaluation {
        intermediate_elems: intermediate,
        unfused_volume: unfused,
        fused_volume: fused,
        fused_footprint: footprint,
        capacity,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::ConvShape;

    fn dw_pw_pair() -> (ConvShape, ConvShape) {
        // A MobileNet-style stage: depthwise 3x3 then pointwise projection.
        let dw = ConvShape::depthwise(16, 18, 3, 1); // out 16x16
        let pw = ConvShape::new(1, 8, 16, 1, 1, dw.h, dw.w, 1).unwrap();
        (dw, pw)
    }

    #[test]
    fn structural_fusability() {
        let (dw, pw) = dw_pw_pair();
        assert_eq!(fusable_pair(&dw, &pw), FusabilityCheck::Fusable);
        // A 3x3 consumer is not fusable.
        let conv3 = ConvShape::new(1, 8, 16, 3, 3, dw.h - 2, dw.w - 2, 1).unwrap();
        assert_eq!(fusable_pair(&dw, &conv3), FusabilityCheck::ConsumerNotPointwise);
        // A pointwise consumer with the wrong channel count mismatches.
        let wrong = ConvShape::new(1, 8, 32, 1, 1, dw.h, dw.w, 1).unwrap();
        assert_eq!(fusable_pair(&dw, &wrong), FusabilityCheck::ShapeMismatch);
        // Strided and grouped pointwise consumers are rejected.
        let strided = ConvShape::new(1, 8, 16, 1, 1, dw.h / 2, dw.w / 2, 2).unwrap();
        assert_eq!(fusable_pair(&dw, &strided), FusabilityCheck::ConsumerNotPointwise);
    }

    #[test]
    fn feasible_fusion_deletes_one_store_and_one_load() {
        let (dw, pw) = dw_pw_pair();
        let machine = MachineModel::i7_9700k();
        // Untiled L3 tiles (both fit the 3M-element L3 easily at this size).
        let eval = evaluate_fusion(
            &dw,
            &pw,
            &TileSizes::full(&dw),
            &TileSizes::full(&pw),
            10_000.0,
            20_000.0,
            &machine,
        );
        assert!(eval.feasible);
        assert_eq!(eval.intermediate_elems, dw.output_elems() as f64);
        assert_eq!(eval.unfused_volume, 30_000.0);
        assert_eq!(eval.fused_volume, 30_000.0 - 2.0 * dw.output_elems() as f64);
        assert_eq!(eval.saving(), 2.0 * dw.output_elems() as f64);
    }

    #[test]
    fn capacity_envelope_rejects_oversized_joint_footprints() {
        // A larger stage: the tiny machine's 16K-element L3 cannot co-host
        // both working sets (the depthwise one alone exceeds it).
        let dw = ConvShape::depthwise(32, 24, 3, 1);
        let pw = ConvShape::new(1, 16, 32, 1, 1, dw.h, dw.w, 1).unwrap();
        let machine = MachineModel::tiny_test_machine();
        let eval = evaluate_fusion(
            &dw,
            &pw,
            &TileSizes::full(&dw),
            &TileSizes::full(&pw),
            10_000.0,
            20_000.0,
            &machine,
        );
        assert!(
            !eval.feasible,
            "joint footprint {} vs capacity {}",
            eval.fused_footprint, eval.capacity
        );
        assert_eq!(eval.fused_volume, eval.unfused_volume);
        assert_eq!(eval.saving(), 0.0);
    }

    #[test]
    fn structural_rejection_keeps_unfused_volume() {
        let (dw, _) = dw_pw_pair();
        let conv3 = ConvShape::new(1, 8, 16, 3, 3, dw.h - 2, dw.w - 2, 1).unwrap();
        let machine = MachineModel::i7_9700k();
        let eval = evaluate_fusion(
            &dw,
            &conv3,
            &TileSizes::full(&dw),
            &TileSizes::full(&conv3),
            5.0,
            7.0,
            &machine,
        );
        assert!(!eval.feasible);
        assert_eq!(eval.fused_volume, 12.0);
    }

    #[test]
    fn per_thread_envelope_rejects_what_the_whole_cache_would_admit() {
        // A pair whose joint footprint fits the i7's whole 3M-element L3 but
        // not a 1/8 share of it.
        let dw = ConvShape::depthwise(64, 66, 3, 1); // out 64x64x64 = 256K
        let pw = ConvShape::new(1, 32, 64, 1, 1, dw.h, dw.w, 1).unwrap();
        let machine = MachineModel::i7_9700k();
        let whole = evaluate_fusion(
            &dw,
            &pw,
            &TileSizes::full(&dw),
            &TileSizes::full(&pw),
            10_000.0,
            20_000.0,
            &machine,
        );
        assert!(
            whole.feasible,
            "joint footprint {} should fit {}",
            whole.fused_footprint, whole.capacity
        );
        let shared = evaluate_fusion_for_threads(
            &dw,
            &pw,
            &TileSizes::full(&dw),
            &TileSizes::full(&pw),
            10_000.0,
            20_000.0,
            &machine,
            8,
        );
        assert_eq!(shared.fused_footprint, whole.fused_footprint);
        assert_eq!(shared.capacity, whole.capacity / 8.0);
        assert!(!shared.feasible, "a 1/8 L3 share must reject the fusion");
        assert_eq!(shared.saving(), 0.0);
        // threads == 1 delegates exactly.
        let one = evaluate_fusion_for_threads(
            &dw,
            &pw,
            &TileSizes::full(&dw),
            &TileSizes::full(&pw),
            10_000.0,
            20_000.0,
            &machine,
            1,
        );
        assert_eq!(one, whole);
    }

    #[test]
    fn saving_never_drives_volume_negative() {
        let (dw, pw) = dw_pw_pair();
        let machine = MachineModel::i7_9700k();
        // Pathologically small per-op volumes: the credit is clamped at zero.
        let eval = evaluate_fusion(
            &dw,
            &pw,
            &TileSizes::full(&dw),
            &TileSizes::full(&pw),
            1.0,
            1.0,
            &machine,
        );
        assert!(eval.feasible);
        assert_eq!(eval.fused_volume, 0.0);
    }
}
