//! Multi-level tile cost assembly (Sec. 5) and the parallel adaptation
//! (Sec. 7).
//!
//! For `L`-level tiling the data volume moved across the boundary that fills
//! tiling level `l` is obtained from the single-level expressions by
//! replacing the problem extents `N_j` with the tile sizes of the next outer
//! level `T_{l+1,j}` and multiplying by the number of level-`l+1` tiles:
//!
//! ```text
//! DV_l = (Π_j N_j / T_{l+1,j}) · DV_single(extents = T_{l+1}, tiles = T_l)
//! DV_L3 = DV_single(extents = N, tiles = T_L3)
//! ```
//!
//! The optimization objective is the *bandwidth-scaled* bottleneck
//! `max_l DV_l / BW_l`; the solver handles the min–max by solving one
//! minimization per candidate bottleneck level with dominance constraints
//! (implemented in `mopt-core`). This module only evaluates the expressions.
//!
//! # Multicore adaptation
//!
//! Under parallel execution `P` threads partition the problem along the
//! schedule's parallel axis ([`conv_spec::ParallelAxis`]: the `k` output
//! channels or the `n·h` output rows). Each thread runs the full tiling on
//! its `1/P` slice with its *private* L1/L2 intact, while the shared L3
//! contributes only a `1/P` capacity share to each thread's capacity
//! constraint and the DRAM-boundary traffic is *summed* across threads.
//! Every parallel branch is gated on `threads > 1`, so at `threads == 1` the
//! model is bit-identical to the sequential expressions (property-tested in
//! `tests/multicore_parallel.rs`).

use conv_spec::{
    ConvShape, LayoutConfig, LoopIndex, MachineModel, ParallelAxis, Permutation, TensorKind,
    TileConfig, TilingLevel, ALL_INDICES,
};
use serde::{Deserialize, Serialize};

use crate::cost::{
    input_footprint, kernel_footprint, output_footprint, single_level_volume_general,
    total_footprint, CostOptions, RealTiles,
};
use crate::move_cost::{self, MoveCost};

/// Real-valued tile sizes for all four levels (Register, L1, L2, L3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiLevelTiles {
    /// Indexed by [`TilingLevel::ordinal`].
    pub levels: [RealTiles; 4],
}

impl MultiLevelTiles {
    /// All levels equal to the full problem size (untiled).
    pub fn full(shape: &ConvShape) -> Self {
        MultiLevelTiles { levels: [RealTiles::full(shape); 4] }
    }

    /// Tile sizes of a level.
    pub fn level(&self, level: TilingLevel) -> &RealTiles {
        &self.levels[level.ordinal()]
    }

    /// Mutable tile sizes of a level.
    pub fn level_mut(&mut self, level: TilingLevel) -> &mut RealTiles {
        &mut self.levels[level.ordinal()]
    }

    /// Enforce the nesting invariant `Reg ≤ L1 ≤ L2 ≤ L3 ≤ N` element-wise.
    pub fn normalized(&self, shape: &ConvShape) -> Self {
        let mut out = *self;
        let ext = RealTiles::full(shape).as_array();
        out.levels[TilingLevel::L3.ordinal()] = out.levels[TilingLevel::L3.ordinal()].clamped(&ext);
        for lvl in [TilingLevel::L2, TilingLevel::L1, TilingLevel::Register] {
            let outer = out.levels[lvl.ordinal() + 1].as_array();
            out.levels[lvl.ordinal()] = out.levels[lvl.ordinal()].clamped(&outer);
        }
        out
    }

    /// Convert an integer tiling configuration to real tiles.
    pub fn from_config(config: &TileConfig) -> Self {
        MultiLevelTiles {
            levels: [
                RealTiles::from(config.level(TilingLevel::Register)),
                RealTiles::from(config.level(TilingLevel::L1)),
                RealTiles::from(config.level(TilingLevel::L2)),
                RealTiles::from(config.level(TilingLevel::L3)),
            ],
        }
    }
}

/// How the L3 tile is partitioned among threads (Sec. 7).
///
/// Parallelization happens along non-reduction dimensions (`n`, `k`, `h`,
/// `w`) by sub-tiling the L2 tile loops; the product of the factors equals
/// the number of threads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelSpec {
    /// Number of threads (cores) used.
    pub threads: usize,
    /// Per-dimension parallelization factors (1 for unparallelized and for
    /// all reduction dimensions).
    pub factors: [usize; 7],
}

impl ParallelSpec {
    /// Sequential execution.
    pub fn sequential() -> Self {
        ParallelSpec { threads: 1, factors: [1; 7] }
    }

    /// A simple default decomposition of `threads` over the `k` and `h`
    /// dimensions (the dimensions the paper's generated code parallelizes
    /// most often), preferring `k`.
    pub fn default_for(shape: &ConvShape, threads: usize) -> Self {
        Self::along_axis(shape, threads, ParallelAxis::OutputChannels)
    }

    /// Decompose `threads` along a schedule-level parallel axis: the axis's
    /// leading dimension takes the largest divisor of `threads` its extent
    /// admits, later priority dimensions absorb the rest.
    pub fn along_axis(shape: &ConvShape, threads: usize, axis: ParallelAxis) -> Self {
        let mut factors = [1usize; 7];
        let mut remaining = threads.max(1);
        for idx in axis.priority() {
            if remaining == 1 {
                break;
            }
            let extent = shape.extent(idx);
            let mut f = 1;
            for cand in (1..=remaining).rev() {
                if remaining.is_multiple_of(cand) && extent >= cand {
                    f = cand;
                    break;
                }
            }
            factors[idx.canonical_position()] = f;
            remaining /= f;
        }
        ParallelSpec { threads: threads.max(1), factors }
    }

    /// The axis the factor vector predominantly splits (see
    /// [`TileConfig::parallel_axis`] for the same rule on integer configs).
    pub fn axis(&self) -> ParallelAxis {
        let rows = self.factor(LoopIndex::N) * self.factor(LoopIndex::H);
        if rows > self.factor(LoopIndex::K) {
            ParallelAxis::OutputRows
        } else {
            ParallelAxis::OutputChannels
        }
    }

    /// Parallelization factor for a dimension.
    pub fn factor(&self, idx: LoopIndex) -> usize {
        self.factors[idx.canonical_position()]
    }

    /// Product of all factors (should equal `threads` for a valid spec).
    pub fn total(&self) -> usize {
        self.factors.iter().product()
    }

    /// Whether only non-reduction dimensions are parallelized and the factor
    /// product matches the thread count.
    pub fn is_valid(&self) -> bool {
        let no_reduction = ALL_INDICES.iter().all(|&i| !i.is_reduction() || self.factor(i) == 1);
        no_reduction && self.total() == self.threads
    }
}

/// Per-level model-predicted data volumes for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelPrediction {
    /// Data volume crossing the boundary feeding each level (elements),
    /// indexed by [`TilingLevel::ordinal`].
    pub volumes: [f64; 4],
    /// Bandwidth-scaled cost of each level (cycles).
    pub scaled_costs: [f64; 4],
    /// The predicted bottleneck level.
    pub bottleneck: TilingLevel,
    /// The bottleneck's bandwidth-scaled cost — the model's figure of merit
    /// (lower is better).
    pub bottleneck_cost: f64,
    /// FLOPs of the operator.
    pub flops: f64,
}

impl ModelPrediction {
    /// Volume at a level.
    pub fn volume(&self, level: TilingLevel) -> f64 {
        self.volumes[level.ordinal()]
    }

    /// Bandwidth-scaled cost at a level.
    pub fn scaled_cost(&self, level: TilingLevel) -> f64 {
        self.scaled_costs[level.ordinal()]
    }

    /// Projected GFLOPS implied by the bottleneck cost (and the compute
    /// throughput ceiling) on a machine.
    pub fn projected_gflops(&self, machine: &MachineModel, threads: usize) -> f64 {
        let fmas_per_cycle = (machine.simd_width * machine.fma_units * threads.max(1)) as f64;
        let compute_cycles = (self.flops / 2.0) / fmas_per_cycle;
        let cycles = self.bottleneck_cost.max(compute_cycles);
        if cycles <= 0.0 {
            return 0.0;
        }
        self.flops / (cycles / (machine.clock_ghz * 1e9)) / 1e9
    }
}

/// One memory level's row in a [`CostBreakdown`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelCost {
    /// The memory level.
    pub level: TilingLevel,
    /// Tile footprint at the level (elements, per thread).
    pub footprint_elems: f64,
    /// Capacity available to one thread at the level (elements; the shared
    /// L3 contributes a `1/P` share).
    pub capacity_elems: f64,
    /// `footprint − capacity`: non-positive for a feasible configuration.
    pub slack_elems: f64,
    /// Data volume crossing the boundary that fills the level (elements,
    /// whole chip).
    pub volume_elems: f64,
    /// Bandwidth-scaled cost of the level (cycles).
    pub scaled_cost: f64,
    /// The level's share of the certified price: the bottleneck level
    /// carries the full bottleneck cost, every other level exactly `0.0`,
    /// so the column sums to the configuration's predicted cost bit for bit
    /// (the model's figure of merit is a max, not a sum — see
    /// [`CostBreakdown`]).
    pub attributed_cost: f64,
}

/// Per-memory-level decomposition of one configuration's predicted cost,
/// served by the `Explain` verb.
///
/// The model's certified price is the *bottleneck* `max_l DV_l / BW_l`, not
/// a sum of per-level terms: levels overlap in time and only the slowest
/// boundary is paid. `levels[..].scaled_cost` exposes every level's real
/// scaled cost (what the max ranges over), while `attributed_cost` assigns
/// the whole certified price to the bottleneck level and zero elsewhere so
/// that summing the attribution reproduces `total_cost` exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// One row per memory level, innermost (Register) first.
    pub levels: Vec<LevelCost>,
    /// The predicted bottleneck level.
    pub bottleneck: TilingLevel,
    /// The certified price: the bottleneck's bandwidth-scaled cost plus the
    /// one-time layout-transform total (cycles). At the default layouts the
    /// move total is exactly zero and this is the bottleneck cost unchanged.
    pub total_cost: f64,
    /// FLOPs of the operator.
    pub flops: f64,
    /// One row per layout transform the schedule performs (empty at the
    /// paper-default layouts).
    pub moves: Vec<MoveCost>,
    /// Sum of the move rows' costs (cycles); `0.0` when `moves` is empty.
    pub move_total: f64,
}

impl CostBreakdown {
    /// Sum of the per-level attributed costs plus the move total — equal to
    /// `total_cost` bit for bit by construction (at default layouts the move
    /// total is a literal zero, so this is the bottleneck attribution alone).
    pub fn attributed_total(&self) -> f64 {
        let levels: f64 = self.levels.iter().map(|l| l.attributed_cost).sum();
        if self.moves.is_empty() {
            levels
        } else {
            levels + self.move_total
        }
    }
}

/// The multi-level analytical model for one operator on one machine.
#[derive(Debug, Clone)]
pub struct MultiLevelModel {
    /// The conv2d problem.
    pub shape: ConvShape,
    /// The machine (capacities and bandwidths).
    pub machine: MachineModel,
    /// The tile-loop permutation (one of the pruned representatives during
    /// optimization; arbitrary during validation).
    pub permutation: Permutation,
    /// Cost options (spatial-locality line size).
    pub options: CostOptions,
    /// Parallel execution specification.
    pub parallel: ParallelSpec,
    /// Per-tensor data layouts the schedule is priced under. At the default
    /// (the paper's fixed NCHW/KCRS) every layout-aware term is skipped
    /// entirely, so the model is bit-identical to the pre-layout one.
    pub layout: LayoutConfig,
}

impl MultiLevelModel {
    /// A sequential model with default options.
    pub fn new(shape: ConvShape, machine: MachineModel, permutation: Permutation) -> Self {
        MultiLevelModel {
            shape,
            machine,
            permutation,
            options: CostOptions::default(),
            parallel: ParallelSpec::sequential(),
            layout: LayoutConfig::default(),
        }
    }

    /// Builder-style: set the parallel specification.
    pub fn with_parallel(mut self, parallel: ParallelSpec) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builder-style: set cost options.
    pub fn with_options(mut self, options: CostOptions) -> Self {
        self.options = options;
        self
    }

    /// Builder-style: price the nest under a layout assignment.
    pub fn with_layout(mut self, layout: LayoutConfig) -> Self {
        self.layout = layout;
        self
    }

    /// Weight per-tensor volumes by their layout traffic factors. Only
    /// called on the non-default-layout path.
    fn layout_weighted_total(&self, v: &crate::cost::ArrayVolumes) -> f64 {
        v.input * move_cost::traffic_factor(&self.shape, &self.layout, TensorKind::Input)
            + v.kernel * move_cost::traffic_factor(&self.shape, &self.layout, TensorKind::Kernel)
            + v.output * move_cost::traffic_factor(&self.shape, &self.layout, TensorKind::Output)
    }

    /// The one-time layout-transform rows for this model's layout (empty at
    /// the default), priced at the boundary each transform crosses.
    pub fn move_rows(&self) -> Vec<MoveCost> {
        move_cost::layout_move_costs(
            &self.shape,
            &self.machine,
            &self.layout,
            &self.options,
            self.parallel.threads,
        )
    }

    /// Total one-time layout-transform cost (cycles); a literal `0.0` at the
    /// default layout.
    pub fn move_total(&self) -> f64 {
        if self.layout.is_default() {
            return 0.0;
        }
        move_cost::layout_move_total(
            &self.shape,
            &self.machine,
            &self.layout,
            &self.options,
            self.parallel.threads,
        )
    }

    /// Number of outer tiles enclosing tiles of `level` (the multiplier
    /// `Π_j N_j / T_{l+1,j}`, continuous form).
    fn outer_tile_count(&self, tiles: &MultiLevelTiles, level: TilingLevel) -> f64 {
        match level.outer() {
            None => 1.0,
            Some(outer) => {
                let t_outer = tiles.level(outer);
                ALL_INDICES
                    .iter()
                    .map(|&idx| {
                        (self.shape.extent(idx) as f64 / t_outer.get(idx).max(1e-12)).max(1.0)
                    })
                    .product()
            }
        }
    }

    /// Effective enclosing extents for tiles of `level` (sequential model).
    fn enclosing_extents(&self, tiles: &MultiLevelTiles, level: TilingLevel) -> RealTiles {
        match level.outer() {
            None => RealTiles::full(&self.shape),
            Some(outer) => *tiles.level(outer),
        }
    }

    /// Per-thread problem extents under parallel execution: each parallelized
    /// dimension's extent shrinks by its factor (continuous form, floored at
    /// one iteration point). With one thread these are the problem extents.
    pub fn thread_extents(&self) -> RealTiles {
        let mut e = RealTiles::full(&self.shape);
        if self.parallel.threads > 1 {
            for &idx in &ALL_INDICES {
                let p = self.parallel.factor(idx) as f64;
                if p > 1.0 {
                    e.set(idx, (e.get(idx) / p).max(1.0));
                }
            }
        }
        e
    }

    /// Tiles re-nested into one thread's slice of the problem: the L3 tile is
    /// clamped to the per-thread extents, the inner levels to their outers.
    fn thread_tiles(&self, tiles: &MultiLevelTiles) -> MultiLevelTiles {
        let mut out = tiles.normalized(&self.shape);
        let ext = self.thread_extents().as_array();
        out.levels[TilingLevel::L3.ordinal()] = out.levels[TilingLevel::L3.ordinal()].clamped(&ext);
        for lvl in [TilingLevel::L2, TilingLevel::L1, TilingLevel::Register] {
            let outer = out.levels[lvl.ordinal() + 1].as_array();
            out.levels[lvl.ordinal()] = out.levels[lvl.ordinal()].clamped(&outer);
        }
        out
    }

    /// Model-predicted data volume (elements, whole chip) crossing the
    /// boundary that fills tiles of `level`.
    ///
    /// Sequentially this is the Sec. 5 assembly. Under parallel execution
    /// (Sec. 7, multicore adaptation) the `P` threads partition the problem
    /// along the schedule's parallel axis: each thread runs the full tiling
    /// on a `1/P` slice (with tiles clamped into its slice), and the chip
    /// total — including the DRAM-boundary traffic — is the *sum* of the
    /// per-thread volumes. At `threads == 1` the parallel path is never
    /// taken, so the sequential expressions are reproduced bit for bit.
    pub fn level_volume(&self, tiles: &MultiLevelTiles, level: TilingLevel) -> f64 {
        if self.parallel.threads <= 1 {
            let tiles = tiles.normalized(&self.shape);
            let extents = self.enclosing_extents(&tiles, level);
            let inner = tiles.level(level);
            let volumes = single_level_volume_general(
                &self.shape,
                &self.permutation,
                inner,
                &extents,
                &self.options,
            );
            let per_outer = if self.layout.is_default() {
                volumes.total()
            } else {
                self.layout_weighted_total(&volumes)
            };
            return self.outer_tile_count(&tiles, level) * per_outer;
        }
        let threads = self.parallel.threads as f64;
        let tiles = self.thread_tiles(tiles);
        let ext = self.thread_extents();
        let extents = match level.outer() {
            None => ext,
            Some(outer) => *tiles.level(outer),
        };
        let volumes = single_level_volume_general(
            &self.shape,
            &self.permutation,
            tiles.level(level),
            &extents,
            &self.options,
        );
        let per_outer = if self.layout.is_default() {
            volumes.total()
        } else {
            self.layout_weighted_total(&volumes)
        };
        let count: f64 = match level.outer() {
            None => 1.0,
            Some(outer) => {
                let t_outer = tiles.level(outer);
                ALL_INDICES
                    .iter()
                    .map(|&idx| (ext.get(idx) / t_outer.get(idx).max(1e-12)).max(1.0))
                    .product()
            }
        };
        threads * count * per_outer
    }

    /// Tile footprint at a level (elements) — the left-hand side of that
    /// level's capacity constraint. Under parallel execution the tile is
    /// first clamped into one thread's slice of the problem.
    pub fn footprint(&self, tiles: &MultiLevelTiles, level: TilingLevel) -> f64 {
        if self.parallel.threads <= 1 {
            return self.tile_footprint(tiles.level(level));
        }
        self.tile_footprint(self.thread_tiles(tiles).level(level))
    }

    /// Tile footprint under the model's layout: the default path is the
    /// paper's expression untouched; non-default layouts inflate each tensor
    /// by its padding factor.
    fn tile_footprint(&self, t: &RealTiles) -> f64 {
        if self.layout.is_default() {
            return total_footprint(&self.shape, t);
        }
        input_footprint(&self.shape, t)
            * move_cost::footprint_factor(&self.shape, &self.layout, TensorKind::Input)
            + kernel_footprint(t)
                * move_cost::footprint_factor(&self.shape, &self.layout, TensorKind::Kernel)
            + output_footprint(t)
                * move_cost::footprint_factor(&self.shape, &self.layout, TensorKind::Output)
    }

    /// Capacity constraint `footprint − capacity ≤ 0` for a level.
    ///
    /// Private levels (registers, L1, L2) belong to one core and keep their
    /// whole capacity. The shared L3 is divided among the active threads
    /// ([`MachineModel::capacity_per_thread`]): each thread's tile must fit
    /// its `1/P` share, so co-running threads never evict each other's
    /// certified working sets. At `threads == 1` both terms are exactly the
    /// sequential ones.
    pub fn capacity_slack(&self, tiles: &MultiLevelTiles, level: TilingLevel) -> f64 {
        self.footprint(tiles, level)
            - self.machine.capacity_per_thread(level, self.parallel.threads) as f64
    }

    /// Bandwidth-scaled cost `DV_l / BW_l` (cycles) of a level, accounting for
    /// per-core bandwidth at private levels.
    pub fn scaled_cost(&self, tiles: &MultiLevelTiles, level: TilingLevel) -> f64 {
        let volume = self.level_volume(tiles, level);
        let bw = self.machine.fill_bandwidth(level);
        let threads = self.parallel.threads.max(1) as f64;
        match level {
            TilingLevel::L3 => volume / bw,
            _ => volume / (bw * threads),
        }
    }

    /// Evaluate the full prediction (volumes, scaled costs, bottleneck) for a
    /// continuous tile assignment.
    pub fn predict_tiles(&self, tiles: &MultiLevelTiles) -> ModelPrediction {
        let mut volumes = [0.0; 4];
        let mut scaled = [0.0; 4];
        for &level in &TilingLevel::ALL {
            volumes[level.ordinal()] = self.level_volume(tiles, level);
            scaled[level.ordinal()] = self.scaled_cost(tiles, level);
        }
        let (bottleneck, bottleneck_cost) = TilingLevel::ALL
            .iter()
            .map(|&l| (l, scaled[l.ordinal()]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("four levels");
        ModelPrediction {
            volumes,
            scaled_costs: scaled,
            bottleneck,
            bottleneck_cost,
            flops: self.shape.flops() as f64,
        }
    }

    /// Evaluate the prediction for an integer tiling configuration. The
    /// configuration's own permutation is used (overriding the model's) so
    /// that arbitrary sampled configurations can be ranked.
    pub fn predict_config(&self, config: &TileConfig) -> ModelPrediction {
        let mut model = self.clone();
        model.permutation = config.permutation.clone();
        model.layout = config.layout;
        model.predict_tiles(&MultiLevelTiles::from_config(config))
    }

    /// Decompose a configuration's prediction into per-level footprints,
    /// capacities, slacks, traffic, and scaled costs (the `Explain` verb's
    /// payload). Uses the configuration's own permutation, exactly like
    /// [`MultiLevelModel::predict_config`].
    pub fn cost_breakdown(&self, config: &TileConfig) -> CostBreakdown {
        let mut model = self.clone();
        model.permutation = config.permutation.clone();
        model.layout = config.layout;
        let tiles = MultiLevelTiles::from_config(config);
        let prediction = model.predict_tiles(&tiles);
        let moves = model.move_rows();
        // An empty f64 sum is `-0.0`; keep the default-layout value a literal
        // positive zero so serialized breakdowns stay byte-identical.
        let move_total: f64 =
            if moves.is_empty() { 0.0 } else { moves.iter().map(|m| m.cost).sum() };
        let levels = TilingLevel::ALL
            .iter()
            .map(|&level| {
                let capacity =
                    self.machine.capacity_per_thread(level, self.parallel.threads) as f64;
                let footprint = model.footprint(&tiles, level);
                LevelCost {
                    level,
                    footprint_elems: footprint,
                    capacity_elems: capacity,
                    slack_elems: footprint - capacity,
                    volume_elems: prediction.volume(level),
                    scaled_cost: prediction.scaled_cost(level),
                    attributed_cost: if level == prediction.bottleneck {
                        prediction.bottleneck_cost
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        // At the default layouts `moves` is empty and the certified price is
        // the bottleneck cost, bit for bit; with transforms it is the
        // bottleneck plus the one-time move total.
        let total_cost = if moves.is_empty() {
            prediction.bottleneck_cost
        } else {
            prediction.bottleneck_cost + move_total
        };
        CostBreakdown {
            levels,
            bottleneck: prediction.bottleneck,
            total_cost,
            flops: prediction.flops,
            moves,
            move_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_spec::TileSizes;

    fn shape() -> ConvShape {
        ConvShape::new(1, 32, 16, 3, 3, 28, 28, 1).unwrap()
    }

    fn machine() -> MachineModel {
        MachineModel::tiny_test_machine()
    }

    fn model() -> MultiLevelModel {
        MultiLevelModel::new(shape(), machine(), Permutation::parse("kcrsnhw").unwrap())
    }

    fn nested_tiles() -> MultiLevelTiles {
        MultiLevelTiles {
            levels: [
                RealTiles::from_array([1.0, 4.0, 1.0, 1.0, 1.0, 1.0, 4.0]),
                RealTiles::from_array([1.0, 8.0, 4.0, 3.0, 3.0, 4.0, 7.0]),
                RealTiles::from_array([1.0, 16.0, 8.0, 3.0, 3.0, 7.0, 14.0]),
                RealTiles::from_array([1.0, 32.0, 16.0, 3.0, 3.0, 14.0, 28.0]),
            ],
        }
    }

    #[test]
    fn outermost_level_reduces_to_single_level_expression() {
        let m = model();
        let tiles = nested_tiles();
        let expected = crate::cost::single_level_volume(
            &m.shape,
            &m.permutation,
            tiles.level(TilingLevel::L3),
            &m.options,
        )
        .total();
        let got = m.level_volume(&tiles, TilingLevel::L3);
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn volumes_grow_toward_the_core() {
        let m = model();
        let tiles = nested_tiles();
        let p = m.predict_tiles(&tiles);
        assert!(p.volume(TilingLevel::Register) >= p.volume(TilingLevel::L1));
        assert!(p.volume(TilingLevel::L1) >= p.volume(TilingLevel::L2));
        assert!(p.volume(TilingLevel::L2) >= p.volume(TilingLevel::L3));
    }

    #[test]
    fn untiled_everything_moves_minimum_data_at_memory() {
        let m = model();
        let tiles = MultiLevelTiles::full(&m.shape);
        let v = m.level_volume(&tiles, TilingLevel::L3);
        let s = m.shape;
        let min = (s.input_elems() + s.kernel_elems() + 2 * s.output_elems()) as f64;
        assert!((v - min).abs() / min < 1e-12);
    }

    #[test]
    fn capacity_slack_signs() {
        let m = model();
        let tiles = nested_tiles();
        // Register tile (4x4 out + ...) small: should fit the 32-element file? footprint:
        // In 1*1*1*4 + Ker 4*1*1*1 + Out 1*4*1*4 = 4 + 4 + 16 = 24 <= 32.
        assert!(m.capacity_slack(&tiles, TilingLevel::Register) <= 0.0);
        // The L3 tile is the whole problem; it exceeds the tiny 16K L3? Its
        // footprint is ~ 14K + 4.6K + 25K > 16384, so slack is positive.
        assert!(m.capacity_slack(&tiles, TilingLevel::L3) > 0.0);
    }

    #[test]
    fn bottleneck_is_argmax_of_scaled_costs() {
        let m = model();
        let tiles = nested_tiles();
        let p = m.predict_tiles(&tiles);
        let max = p.scaled_costs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(p.bottleneck_cost, max);
        assert_eq!(p.scaled_cost(p.bottleneck), max);
        assert!(p.projected_gflops(&m.machine, 1) > 0.0);
    }

    #[test]
    fn multicore_model_shrinks_private_costs_and_sums_dram_traffic() {
        let seq = model();
        let tiles = nested_tiles();
        let p_seq = seq.predict_tiles(&tiles);
        for axis in ParallelAxis::ALL {
            let par = model().with_parallel(ParallelSpec::along_axis(&shape(), 2, axis));
            assert!(par.parallel.is_valid());
            let p_par = par.predict_tiles(&tiles);
            // Each core runs the tiling on a half-size slice with its own
            // private L1/L2, so per-core time at the private levels shrinks.
            for level in [TilingLevel::Register, TilingLevel::L1, TilingLevel::L2] {
                assert!(
                    p_par.scaled_cost(level) <= p_seq.scaled_cost(level) + 1e-9,
                    "axis {axis}, level {level}: {} vs sequential {}",
                    p_par.scaled_cost(level),
                    p_seq.scaled_cost(level)
                );
            }
            // Slicing loses cross-slice reuse: DRAM traffic summed over the
            // threads never drops below the sequential volume.
            assert!(
                p_par.volume(TilingLevel::L3) >= p_seq.volume(TilingLevel::L3) - 1e-9,
                "axis {axis}: {} vs sequential {}",
                p_par.volume(TilingLevel::L3),
                p_seq.volume(TilingLevel::L3)
            );
        }
    }

    #[test]
    fn multicore_capacity_constraint_tightens_only_the_shared_level() {
        let tiles = nested_tiles();
        let seq = model();
        let par = model().with_parallel(ParallelSpec::default_for(&shape(), 2));
        // Private levels keep their whole capacity (the tiny machine's L1/L2
        // are private; the nested tiles fit their slices unclamped).
        for level in [TilingLevel::Register, TilingLevel::L1] {
            assert_eq!(seq.capacity_slack(&tiles, level), par.capacity_slack(&tiles, level));
        }
        // The shared L3 is charged against a per-thread share of the cache.
        let cap = seq.machine.capacity(TilingLevel::L3) as f64;
        let share = seq.machine.capacity_per_thread(TilingLevel::L3, 2) as f64;
        assert!(share < cap);
        assert_eq!(
            seq.capacity_slack(&tiles, TilingLevel::L3),
            seq.footprint(&tiles, TilingLevel::L3) - cap
        );
        assert_eq!(
            par.capacity_slack(&tiles, TilingLevel::L3),
            par.footprint(&tiles, TilingLevel::L3) - share
        );
    }

    #[test]
    fn parallel_spec_validation() {
        let s = shape();
        let good = ParallelSpec::default_for(&s, 8);
        assert!(good.is_valid());
        assert_eq!(good.total(), 8);
        assert_eq!(good.axis(), ParallelAxis::OutputChannels);
        let rows = ParallelSpec::along_axis(&s, 8, ParallelAxis::OutputRows);
        assert!(rows.is_valid());
        assert_eq!(rows.total(), 8);
        assert_eq!(rows.axis(), ParallelAxis::OutputRows);
        assert!(rows.factor(LoopIndex::H) > 1);
        let mut bad = ParallelSpec::sequential();
        bad.threads = 4;
        assert!(!bad.is_valid());
        let mut reduction = ParallelSpec::default_for(&s, 2);
        reduction.factors[LoopIndex::C.canonical_position()] = 2;
        assert!(!reduction.is_valid());
    }

    #[test]
    fn cost_breakdown_matches_the_prediction_and_attributes_the_full_price() {
        let m = model();
        let s = shape();
        let mut cfg = TileConfig::untiled(&s);
        cfg.tiles[TilingLevel::Register.ordinal()] = TileSizes::from_array([1, 4, 1, 1, 1, 1, 4]);
        cfg.tiles[TilingLevel::L1.ordinal()] = TileSizes::from_array([1, 8, 4, 3, 3, 4, 7]);
        cfg.tiles[TilingLevel::L2.ordinal()] = TileSizes::from_array([1, 16, 8, 3, 3, 7, 14]);
        let cfg = cfg.normalized(&s);
        let prediction = m.predict_config(&cfg);
        let breakdown = m.cost_breakdown(&cfg);
        assert_eq!(breakdown.levels.len(), 4);
        assert_eq!(breakdown.bottleneck, prediction.bottleneck);
        assert_eq!(breakdown.total_cost, prediction.bottleneck_cost);
        assert_eq!(breakdown.flops, prediction.flops);
        for row in &breakdown.levels {
            assert_eq!(row.scaled_cost, prediction.scaled_cost(row.level));
            assert_eq!(row.volume_elems, prediction.volume(row.level));
            assert_eq!(row.slack_elems, row.footprint_elems - row.capacity_elems);
            assert_eq!(
                row.footprint_elems - row.capacity_elems,
                m.capacity_slack(&MultiLevelTiles::from_config(&cfg), row.level)
            );
        }
        // The attribution sums to the certified price exactly: the
        // bottleneck row carries it all, the others are literal zeros.
        assert_eq!(breakdown.attributed_total(), breakdown.total_cost);
        let nonzero: Vec<_> =
            breakdown.levels.iter().filter(|l| l.attributed_cost != 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!(nonzero[0].level, breakdown.bottleneck);
    }

    #[test]
    fn predict_config_uses_configs_permutation() {
        let m = model();
        let s = shape();
        let mut cfg = TileConfig::untiled(&s);
        cfg.permutation = Permutation::parse("nkhwcrs").unwrap();
        cfg.tiles[TilingLevel::Register.ordinal()] = TileSizes::from_array([1, 8, 4, 1, 1, 4, 4]);
        cfg.tiles[TilingLevel::L1.ordinal()] = TileSizes::from_array([1, 16, 8, 3, 3, 7, 7]);
        cfg.tiles[TilingLevel::L2.ordinal()] = TileSizes::from_array([1, 32, 16, 3, 3, 14, 14]);
        let p = m.predict_config(&cfg);
        // Same volumes as a model constructed directly with that permutation.
        let m2 = MultiLevelModel::new(s, machine(), cfg.permutation.clone());
        let p2 = m2.predict_tiles(&MultiLevelTiles::from_config(&cfg));
        assert_eq!(p.volumes, p2.volumes);
    }

    #[test]
    fn depthwise_and_dilated_predictions_are_sane() {
        // The multi-level assembly must stay well-behaved on generalized
        // shapes: positive finite volumes that grow toward the core, and a
        // depthwise kernel volume 1/groups of the dense one at every level.
        for s in [
            ConvShape::depthwise(32, 30, 3, 1),
            ConvShape::new(1, 32, 16, 3, 3, 26, 26, 1).unwrap().with_dilation(2).unwrap(),
            ConvShape::new_general(1, 32, 16, 3, 3, 28, 28, 1, 1, 4).unwrap(),
        ] {
            let m = MultiLevelModel::new(s, machine(), Permutation::parse("kcrsnhw").unwrap());
            let tiles = MultiLevelTiles::full(&s);
            let p = m.predict_tiles(&tiles);
            for level in TilingLevel::ALL {
                assert!(
                    p.volume(level).is_finite() && p.volume(level) > 0.0,
                    "bad volume at {level} for {s}"
                );
            }
            assert!(p.volume(TilingLevel::Register) >= p.volume(TilingLevel::L3));
            assert!(p.bottleneck_cost.is_finite() && p.bottleneck_cost > 0.0);
            assert!(p.projected_gflops(&machine(), 1) > 0.0);
        }
    }

    #[test]
    fn model_rankings_correlate_with_tile_simulator() {
        // The model's figure of merit should broadly agree with the
        // tile-granularity traffic simulator on which of two configurations
        // moves less data at the outermost level.
        let s = ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap();
        let m = MultiLevelModel::new(s, machine(), Permutation::parse("kcrsnhw").unwrap());
        let good = TileConfig::new(
            Permutation::parse("kcrsnhw").unwrap(),
            [
                TileSizes::from_array([1, 4, 1, 1, 1, 1, 4]),
                TileSizes::from_array([1, 8, 4, 3, 3, 4, 6]),
                TileSizes::from_array([1, 16, 8, 3, 3, 6, 12]),
                TileSizes::from_array([1, 16, 16, 3, 3, 12, 12]),
            ],
            TileSizes::ones(),
        )
        .normalized(&s);
        let bad = TileConfig::new(
            Permutation::parse("kcrsnhw").unwrap(),
            [
                TileSizes::from_array([1, 1, 1, 1, 1, 1, 1]),
                TileSizes::from_array([1, 2, 1, 1, 1, 2, 2]),
                TileSizes::from_array([1, 2, 2, 1, 1, 2, 2]),
                TileSizes::from_array([1, 4, 2, 1, 1, 4, 4]),
            ],
            TileSizes::ones(),
        )
        .normalized(&s);
        let sim = cache_sim::TileTrafficSimulator::default();
        let model_good = m.predict_config(&good);
        let model_bad = m.predict_config(&bad);
        let sim_good = sim.simulate(&s, &good);
        let sim_bad = sim.simulate(&s, &bad);
        assert!(model_good.volume(TilingLevel::L3) < model_bad.volume(TilingLevel::L3));
        assert!(
            sim_good.volume(TilingLevel::L3) < sim_bad.volume(TilingLevel::L3),
            "simulator disagrees with model on an obvious pair"
        );
    }
}
