//! Morello-style pricing of layout transforms and layout-dependent traffic.
//!
//! The paper's model assumes the kernel-packing pass (Sec. 6) and any
//! feature-map blocking are free, so the optimizer cannot trade a one-time
//! repack against cheaper loop-body traffic. This module closes that gap
//! with the cost shape used by Morello's CPU target:
//!
//! * **lines touched** — a transform streams whole cache lines, so each
//!   contiguous run of `r` elements costs `max(r, line)` elements of
//!   traffic (a strided gather pays a full line per element),
//! * **non-contiguity penalty** — runs shorter than a line lose the
//!   prefetcher and pay a ~10% latency surcharge ([`NONCONTIG_PENALTY`]),
//! * **prefetch discount** — line-sized-or-longer streams are covered by
//!   the hardware prefetcher and cost half ([`PREFETCH_DISCOUNT`]).
//!
//! A transform is priced **at the boundary it crosses**: the outermost
//! memory boundary the two copies of the tensor do not fit inside
//! ([`transform_level`]), scaled by that boundary's fill bandwidth — the
//! same units as the loop-nest bottleneck, so the two compose into one
//! objective (`total = bottleneck + Σ move costs`, the one-time packing
//! amortized across the whole nest).
//!
//! Every function here returns exactly zero work for the paper-default
//! layouts, and the model gates on [`LayoutConfig::is_default`] before
//! touching any of it, so the fixed-layout model stays bit-identical.

use conv_spec::{
    ConvShape, KernelLayout, LayoutConfig, MachineModel, PackedKernelLayout, TensorKind,
    TensorLayout, TilingLevel,
};
use serde::{Deserialize, Serialize};

use crate::cost::CostOptions;

/// Latency surcharge for access runs shorter than a cache line (the
/// prefetcher cannot cover them). Morello's CPU target uses the same ~10%.
pub const NONCONTIG_PENALTY: f64 = 1.1;

/// Discount for line-sized-or-longer streaming runs the hardware prefetcher
/// hides (Morello halves the cost of prefetched moves).
pub const PREFETCH_DISCOUNT: f64 = 0.5;

/// One layout transform's price: a row of the `Explain` cost breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveCost {
    /// The tensor being repacked.
    pub tensor: TensorKind,
    /// Human-readable transform tag, e.g. `kcrs->packed8`.
    pub transform: String,
    /// The memory boundary the transform crosses (priced at this level's
    /// fill bandwidth).
    pub level: TilingLevel,
    /// Elements read from the source layout.
    pub read_elems: f64,
    /// Elements written to the destination layout (including padding).
    pub write_elems: f64,
    /// Line-rounded, penalty-weighted element traffic (read + write).
    pub lines_touched: f64,
    /// Bandwidth-scaled cost (cycles) — same unit as the loop bottleneck.
    pub cost: f64,
}

/// Line-size-aware traffic (in elements, penalty-weighted) for touching
/// `elems` elements in contiguous runs of `run` elements each.
///
/// Each distinct run touches at least one full line, so the traffic is
/// `max(elems, (elems / run) · line)`; runs shorter than a line pay
/// [`NONCONTIG_PENALTY`], longer runs earn [`PREFETCH_DISCOUNT`]. The
/// result is monotone non-increasing in `run` (more contiguity never costs
/// more) — property-tested in `tests/move_cost_props.rs`.
pub fn stream_traffic(elems: f64, run: f64, line_elems: usize) -> f64 {
    if elems <= 0.0 {
        return 0.0;
    }
    let line = line_elems.max(1) as f64;
    let run = run.max(1.0).min(elems);
    let runs = (elems / run).max(1.0);
    let touched = (runs * line).max(elems);
    let penalty = if run >= line { PREFETCH_DISCOUNT } else { NONCONTIG_PENALTY };
    touched * penalty
}

/// The memory boundary a transform of `total_elems` working-set elements
/// (source + destination copies) crosses: the fill boundary of the
/// innermost level that holds both copies, or the DRAM (L3-fill) boundary
/// when nothing does.
pub fn transform_level(machine: &MachineModel, total_elems: f64) -> TilingLevel {
    if total_elems <= machine.capacity(TilingLevel::L1) as f64 {
        TilingLevel::Register
    } else if total_elems <= machine.capacity(TilingLevel::L2) as f64 {
        TilingLevel::L1
    } else if total_elems <= machine.capacity(TilingLevel::L3) as f64 {
        TilingLevel::L2
    } else {
        TilingLevel::L3
    }
}

/// Convert penalty-weighted element traffic into bandwidth-scaled cycles at
/// `level`, matching `MultiLevelModel::scaled_cost`'s private/shared split:
/// the DRAM boundary is shared (one bandwidth for the chip), private levels
/// repack in parallel across threads.
fn scale(machine: &MachineModel, level: TilingLevel, traffic: f64, threads: usize) -> f64 {
    let bw = machine.fill_bandwidth(level);
    let threads = threads.max(1) as f64;
    match level {
        TilingLevel::L3 => traffic / bw,
        _ => traffic / (bw * threads),
    }
}

/// Price the one-time transform of `tensor` from its paper-default layout
/// into its layout under `layout`. Returns `None` when the tensor already
/// is in its default layout (no transform, no cost).
pub fn tensor_move_cost(
    shape: &ConvShape,
    machine: &MachineModel,
    layout: &LayoutConfig,
    tensor: TensorKind,
    options: &CostOptions,
    threads: usize,
) -> Option<MoveCost> {
    let line = options.line_elems;
    let (transform, read_elems, read_run, write_elems, write_run) = match tensor {
        TensorKind::Kernel => match layout.kernel {
            KernelLayout::Kcrs => return None,
            KernelLayout::Packed { vec_len } => {
                // Gather k-strided rows of the KCRS kernel; each (k, c, r)
                // row is an S-element contiguous run (tiny for 3x3 kernels,
                // so the gather side pays the non-contiguity penalty).
                // Writes stream the packed buffer front to back.
                let src = shape.kernel_elems() as f64;
                let dst = PackedKernelLayout::new(shape, vec_len.max(1)).len() as f64;
                (format!("kcrs->packed{vec_len}"), src, shape.s as f64, dst, dst)
            }
        },
        TensorKind::Input => match layout.input {
            TensorLayout::Nchw => return None,
            other => {
                // Blocking interleaves `c_block` channel planes: the reads
                // advance `c_block` parallel row streams (run = one input
                // row), the writes stream the blocked buffer sequentially.
                let dims = (shape.n, shape.c, shape.input_h(), shape.input_w());
                let src = shape.input_elems() as f64;
                let dst = other.len(dims) as f64;
                (format!("nchw->{}", feature_tag(other)), src, shape.input_w() as f64, dst, dst)
            }
        },
        TensorKind::Output => match layout.output {
            TensorLayout::Nchw => return None,
            other => {
                // The blocked output is un-blocked back to NCHW once after
                // the nest: same stream structure as the input transform.
                let dims = (shape.n, shape.k, shape.h, shape.w);
                let src = other.len(dims) as f64;
                let dst = shape.output_elems() as f64;
                (format!("{}->nchw", feature_tag(other)), src, shape.w as f64, dst, dst)
            }
        },
    };
    let traffic =
        stream_traffic(read_elems, read_run, line) + stream_traffic(write_elems, write_run, line);
    let level = transform_level(machine, read_elems + write_elems);
    Some(MoveCost {
        tensor,
        transform,
        level,
        read_elems,
        write_elems,
        lines_touched: traffic,
        cost: scale(machine, level, traffic, threads),
    })
}

/// All transform rows for a layout assignment (empty at the default).
pub fn layout_move_costs(
    shape: &ConvShape,
    machine: &MachineModel,
    layout: &LayoutConfig,
    options: &CostOptions,
    threads: usize,
) -> Vec<MoveCost> {
    if layout.is_default() {
        return Vec::new();
    }
    TensorKind::ALL
        .iter()
        .filter_map(|&t| tensor_move_cost(shape, machine, layout, t, options, threads))
        .collect()
}

/// Total one-time transform cost (cycles) for a layout assignment — the term
/// added to the loop-nest bottleneck when the optimizer prices a layout.
pub fn layout_move_total(
    shape: &ConvShape,
    machine: &MachineModel,
    layout: &LayoutConfig,
    options: &CostOptions,
    threads: usize,
) -> f64 {
    let costs = layout_move_costs(shape, machine, layout, options, threads);
    // An empty f64 sum is `-0.0`; keep the default-layout total a literal
    // positive zero.
    if costs.is_empty() {
        0.0
    } else {
        costs.iter().map(|m| m.cost).sum()
    }
}

fn feature_tag(layout: TensorLayout) -> String {
    match layout {
        TensorLayout::Nchw => "nchw".to_string(),
        TensorLayout::Nhwc => "nhwc".to_string(),
        TensorLayout::Nchwc { c_block } => format!("nchwc{c_block}"),
    }
}

/// Multiplier on a tensor's loop-nest traffic under its layout.
///
/// Exactly `1.0` for every default layout. A packed kernel inflates traffic
/// by its zero-padding (`ceil(K/V)·V / K`) but makes the vectorized
/// output-channel access stride-1, removing the non-contiguity surcharge
/// the strided KCRS walk pays (`1 / `[`NONCONTIG_PENALTY`]). Channel-blocked
/// feature maps get the same treatment on the channel axis.
pub fn traffic_factor(shape: &ConvShape, layout: &LayoutConfig, tensor: TensorKind) -> f64 {
    match tensor {
        TensorKind::Kernel => match layout.kernel {
            KernelLayout::Kcrs => 1.0,
            KernelLayout::Packed { vec_len } => {
                let v = vec_len.max(1);
                let pad = (shape.k.div_ceil(v) * v) as f64 / shape.k as f64;
                pad / NONCONTIG_PENALTY
            }
        },
        TensorKind::Input => feature_factor(layout.input, shape.c),
        TensorKind::Output => feature_factor(layout.output, shape.k),
    }
}

fn feature_factor(layout: TensorLayout, channels: usize) -> f64 {
    match layout {
        TensorLayout::Nchw | TensorLayout::Nhwc => 1.0,
        TensorLayout::Nchwc { c_block } => {
            let cb = c_block.max(1);
            let pad = (channels.div_ceil(cb) * cb) as f64 / channels as f64;
            pad / NONCONTIG_PENALTY
        }
    }
}

/// Multiplier on a tensor's cache footprint under its layout: padding only
/// (contiguity does not change residency). `1.0` at the defaults.
pub fn footprint_factor(shape: &ConvShape, layout: &LayoutConfig, tensor: TensorKind) -> f64 {
    match tensor {
        TensorKind::Kernel => match layout.kernel {
            KernelLayout::Kcrs => 1.0,
            KernelLayout::Packed { vec_len } => {
                let v = vec_len.max(1);
                (shape.k.div_ceil(v) * v) as f64 / shape.k as f64
            }
        },
        TensorKind::Input => feature_pad(layout.input, shape.c),
        TensorKind::Output => feature_pad(layout.output, shape.k),
    }
}

fn feature_pad(layout: TensorLayout, channels: usize) -> f64 {
    match layout {
        TensorLayout::Nchw | TensorLayout::Nhwc => 1.0,
        TensorLayout::Nchwc { c_block } => {
            let cb = c_block.max(1);
            (channels.div_ceil(cb) * cb) as f64 / channels as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(1, 32, 16, 3, 3, 28, 28, 1).unwrap()
    }

    fn machine() -> MachineModel {
        MachineModel::tiny_test_machine()
    }

    #[test]
    fn default_layout_moves_nothing() {
        let layout = LayoutConfig::default();
        let opts = CostOptions { line_elems: 16 };
        assert!(layout_move_costs(&shape(), &machine(), &layout, &opts, 1).is_empty());
        assert_eq!(layout_move_total(&shape(), &machine(), &layout, &opts, 1), 0.0);
        for t in TensorKind::ALL {
            assert_eq!(traffic_factor(&shape(), &layout, t), 1.0);
            assert_eq!(footprint_factor(&shape(), &layout, t), 1.0);
        }
    }

    #[test]
    fn packed_kernel_prices_one_transform() {
        let layout = LayoutConfig::packed_kernel(8);
        let opts = CostOptions { line_elems: 16 };
        let moves = layout_move_costs(&shape(), &machine(), &layout, &opts, 1);
        assert_eq!(moves.len(), 1);
        let m = &moves[0];
        assert_eq!(m.tensor, TensorKind::Kernel);
        assert_eq!(m.transform, "kcrs->packed8");
        assert_eq!(m.read_elems, shape().kernel_elems() as f64);
        assert_eq!(m.write_elems, PackedKernelLayout::new(&shape(), 8).len() as f64);
        assert!(m.cost > 0.0 && m.cost.is_finite());
        assert_eq!(layout_move_total(&shape(), &machine(), &layout, &opts, 1), m.cost);
    }

    #[test]
    fn blocked_layout_prices_all_three_tensors() {
        let layout = LayoutConfig::blocked(8);
        let opts = CostOptions { line_elems: 16 };
        let moves = layout_move_costs(&shape(), &machine(), &layout, &opts, 1);
        assert_eq!(moves.len(), 3);
        for m in &moves {
            assert!(m.cost > 0.0 && m.cost.is_finite(), "{m:?}");
            assert!(m.lines_touched >= m.read_elems.min(m.write_elems), "{m:?}");
        }
        // The big feature map crosses a boundary at least as far out as the
        // small kernel's.
        let input = moves.iter().find(|m| m.tensor == TensorKind::Input).unwrap();
        let kernel = moves.iter().find(|m| m.tensor == TensorKind::Kernel).unwrap();
        assert!(input.level >= kernel.level);
    }

    #[test]
    fn stream_traffic_rewards_contiguity() {
        let line = 16;
        // Fully strided: one line per element, plus the penalty.
        let strided = stream_traffic(1000.0, 1.0, line);
        assert_eq!(strided, 1000.0 * 16.0 * NONCONTIG_PENALTY);
        // Fully contiguous: the elements themselves, at the discount.
        let streamed = stream_traffic(1000.0, 1000.0, line);
        assert_eq!(streamed, 1000.0 * PREFETCH_DISCOUNT);
        assert!(streamed < strided);
        // Monotone non-increasing in the run length.
        let mut prev = f64::INFINITY;
        for run in 1..=64 {
            let t = stream_traffic(4096.0, run as f64, line);
            assert!(t <= prev + 1e-9, "run {run}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn transform_level_tracks_working_set() {
        let m = machine();
        assert_eq!(transform_level(&m, 1.0), TilingLevel::Register);
        assert_eq!(transform_level(&m, m.capacity(TilingLevel::L3) as f64 * 2.0), TilingLevel::L3);
        // Levels are ordered inner to outer as the working set grows.
        let mut prev = TilingLevel::Register;
        for elems in [1.0, 1e3, 1e5, 1e9] {
            let l = transform_level(&m, elems);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn packed_traffic_factor_trades_padding_against_contiguity() {
        // K=32 divides by 8: no padding, pure contiguity win.
        let aligned = LayoutConfig::packed_kernel(8);
        let f = traffic_factor(&shape(), &aligned, TensorKind::Kernel);
        assert!((f - 1.0 / NONCONTIG_PENALTY).abs() < 1e-12);
        // K=10 pads to 16 under V=8: the padding can overwhelm the win.
        let odd = ConvShape::new(1, 10, 16, 3, 3, 28, 28, 1).unwrap();
        let f_odd = traffic_factor(&odd, &aligned, TensorKind::Kernel);
        assert!((f_odd - 1.6 / NONCONTIG_PENALTY).abs() < 1e-12);
        assert!(f_odd > 1.0, "heavy padding must cost more than default");
        // Footprint only sees the padding.
        assert_eq!(footprint_factor(&odd, &aligned, TensorKind::Kernel), 1.6);
    }
}
