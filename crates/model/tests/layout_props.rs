//! Property tests for the layout axis of the analytical model.
//!
//! Three families, per the layout-planning design:
//!
//! 1. **Bit-identity at default layouts** — a model whose layout is the paper
//!    default must price every configuration exactly (bit-for-bit) as the
//!    pre-layout model did: no move rows, a literal-zero move total, and a
//!    breakdown total equal to the bottleneck cost.
//! 2. **Monotonicity in non-contiguity** — `stream_traffic` must never get
//!    cheaper when the contiguous run length shrinks.
//! 3. **Cache-sim agreement** — the lines-touched term must match what an
//!    exact LRU cache at line granularity observes for packed (contiguous)
//!    versus strided kernel sweeps.

use cache_sim::FullyAssocLru;
use conv_spec::{ConvShape, LayoutConfig, MachineModel, Permutation, TileConfig};
use mopt_model::move_cost::{stream_traffic, NONCONTIG_PENALTY, PREFETCH_DISCOUNT};
use mopt_model::multilevel::MultiLevelModel;

/// Deterministic xorshift64* stream for the hand-rolled property grids.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn shapes() -> Vec<ConvShape> {
    vec![
        ConvShape::new(1, 64, 32, 3, 3, 28, 28, 1).unwrap(),
        ConvShape::new(1, 16, 8, 1, 1, 14, 14, 1).unwrap(),
        ConvShape::from_table1(64, 32, 58, 3, 2),
        ConvShape::depthwise(32, 28, 3, 1),
        ConvShape::new_general(2, 32, 32, 3, 3, 14, 14, 1, 2, 4).unwrap(),
    ]
}

#[test]
fn default_layout_is_bit_identical_to_prelayout_pricing() {
    let machine = MachineModel::i7_9700k();
    for shape in shapes() {
        for perm in ["kcrsnhw", "nkhwcrs", "nchrswk"] {
            let model =
                MultiLevelModel::new(shape, machine.clone(), Permutation::parse(perm).unwrap());
            let config = TileConfig::untiled(&shape);

            // An explicitly-set default layout is the same model.
            let explicit = model.clone().with_layout(LayoutConfig::default());
            let a = model.predict_config(&config);
            let b = explicit.predict_config(&config);
            assert_eq!(a.volumes, b.volumes, "{perm}: volumes must be bit-identical");
            assert_eq!(a.bottleneck_cost.to_bits(), b.bottleneck_cost.to_bits());

            // No move rows, literal-zero move total, total == bottleneck.
            assert!(model.move_rows().is_empty());
            assert_eq!(model.move_total().to_bits(), 0.0f64.to_bits());
            let breakdown = model.cost_breakdown(&config);
            assert!(breakdown.moves.is_empty());
            assert_eq!(breakdown.move_total.to_bits(), 0.0f64.to_bits());
            assert_eq!(breakdown.total_cost.to_bits(), a.bottleneck_cost.to_bits());
            assert_eq!(breakdown.attributed_total().to_bits(), breakdown.total_cost.to_bits());
        }
    }
}

#[test]
fn non_default_layouts_price_moves_on_top_of_the_bottleneck() {
    let machine = MachineModel::i7_9700k();
    let shape = ConvShape::new(1, 64, 32, 3, 3, 28, 28, 1).unwrap();
    let base = MultiLevelModel::new(shape, machine, Permutation::parse("kcrsnhw").unwrap());
    let config = TileConfig::untiled(&shape);
    let bottleneck = base.predict_config(&config).bottleneck_cost;
    for layout in [LayoutConfig::packed_kernel(8), LayoutConfig::blocked(8)] {
        let laid = base.clone().with_layout(layout);
        let moves = laid.move_rows();
        assert!(!moves.is_empty(), "{layout:?} must price at least one transform");
        let move_total = laid.move_total();
        assert!(move_total > 0.0 && move_total.is_finite());
        let breakdown = laid.cost_breakdown(&config.clone().with_layout(layout));
        assert!(breakdown.move_total > 0.0);
        assert!(
            breakdown.total_cost >= breakdown.levels.iter().map(|l| l.attributed_cost).sum(),
            "moves only ever add cost"
        );
        // The one-time moves are small relative to the loop-nest bottleneck
        // for a realistically-sized operator (amortization is the whole
        // point of searching layouts jointly).
        assert!(move_total < bottleneck, "move total {move_total} vs bottleneck {bottleneck}");
    }
}

#[test]
fn stream_traffic_is_monotone_in_contiguity() {
    let mut rng = Rng(0x5eed_1234_abcd_ef01);
    for _ in 0..500 {
        let line = [8usize, 16, 32][rng.below(3) as usize];
        let elems = (rng.below(1 << 16) + 1) as f64;
        let run_a = (rng.below(256) + 1) as f64;
        let run_b = (rng.below(256) + 1) as f64;
        let (short, long) = if run_a <= run_b { (run_a, run_b) } else { (run_b, run_a) };
        let costly = stream_traffic(elems, short, line);
        let cheap = stream_traffic(elems, long, line);
        assert!(
            costly >= cheap,
            "shorter runs must never be cheaper: elems {elems} line {line} \
             run {short} -> {costly} vs run {long} -> {cheap}"
        );
        // Traffic is never below the payload and both factors are bounded.
        assert!(cheap >= elems * PREFETCH_DISCOUNT);
        assert!(
            costly <= (elems / short).ceil().max(1.0) * line as f64 * NONCONTIG_PENALTY + elems
        );
    }
}

/// Walk `elems` element addresses arranged as contiguous runs of `run`
/// elements whose starts are spread `gap` elements apart, through a small
/// line-granularity LRU, and return lines missed.
fn sweep_misses(elems: usize, run: usize, gap: usize, line: usize) -> u64 {
    // Capacity of a few lines: large enough to hold one run's current line,
    // too small to keep lines alive across strided revisits.
    let mut cache = FullyAssocLru::new(4 * line, line);
    let runs = elems.div_ceil(run);
    for r in 0..runs {
        let base = r * gap;
        for e in 0..run.min(elems - r * run) {
            cache.access(base + e, false);
        }
    }
    cache.stats().misses
}

#[test]
fn cache_sim_confirms_packed_versus_strided_kernel_traffic() {
    // A 64×32×3×3 kernel: packed layout streams it contiguously; KCRS read
    // in packed-iteration order touches runs of S = 3 elements scattered
    // CRS = 288 apart.
    let (elems, line) = (64 * 32 * 3 * 3usize, 16usize);

    let packed_misses = sweep_misses(elems, elems, 1, line);
    let strided_misses = sweep_misses(elems, 3, 288, line);

    // Contiguous sweep: one miss per line — exactly the `elems` payload term
    // the model uses (stream_traffic's pre-factor lines-touched term).
    assert_eq!(packed_misses as usize, elems.div_ceil(line));
    let packed_term = stream_traffic(elems as f64, elems as f64, line) / PREFETCH_DISCOUNT;
    assert!((packed_misses as f64 * line as f64 - packed_term).abs() < line as f64);

    // Strided sweep: every 3-element run pays a fresh line (sometimes two),
    // i.e. (elems/run)·line elements of traffic — the model's strided term.
    let strided_term = stream_traffic(elems as f64, 3.0, line) / NONCONTIG_PENALTY;
    let simulated = strided_misses as f64 * line as f64;
    assert!(
        simulated >= strided_term && simulated <= strided_term * 2.0,
        "simulated {simulated} vs modeled {strided_term}"
    );

    // And the headline ordering the planner relies on.
    assert!(strided_misses > packed_misses * 4);
}
