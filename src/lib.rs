//! Umbrella crate for the MOpt reproduction workspace.
//!
//! This crate exists so that repository-level `examples/` and `tests/` can
//! exercise the public API of every workspace crate through a single
//! dependency. It re-exports the member crates under stable names.
//!
//! See `README.md` for the architecture overview, the crate inventory, and
//! the `moptd` server quickstart.

pub use autotune;
pub use baselines;
pub use cache_sim;
pub use conv_exec;
pub use conv_spec;
pub use mopt_core;
pub use mopt_model;
pub use mopt_service;
pub use mopt_solver;
