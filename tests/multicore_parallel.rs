//! Property tests for the multicore model and the parallel executors.
//!
//! Two families of properties:
//!
//! 1. **Sequential bit-identity** — at `threads == 1` the contention-aware
//!    multicore model must be *bit-identical* to the pre-multicore
//!    expressions: per-level volumes, capacity slacks, and bandwidth-scaled
//!    costs are compared against inline copies of the sequential assembly
//!    (count × single-level volume; footprint minus the *whole* cache
//!    capacity) with exact (`==`) floating-point equality. The single-level
//!    volume expressions themselves are pinned separately by
//!    `tests/generalized_conv.rs`.
//! 2. **Parallel execution exactness** — across a randomized shape × stride
//!    × dilation × groups × thread-count grid (thread counts deliberately
//!    exceeding the partitioned extents), [`ParTiledConv`] on both parallel
//!    axes is bit-for-bit equal to the sequential [`TiledConv`] walk, and
//!    the parallel fused depthwise → pointwise executor is bit-for-bit
//!    equal to its sequential band loop.

use proptest::prelude::*;

use mopt_repro::conv_exec::{FusedDwPw, ParTiledConv, Tensor4, TiledConv};
use mopt_repro::conv_spec::{
    ConvShape, MachineModel, ParallelAxis, Permutation, TileConfig, TileSizes, TilingLevel,
    ALL_INDICES,
};
use mopt_repro::mopt_model::cost::{single_level_volume_general, total_footprint, CostOptions};
use mopt_repro::mopt_model::multilevel::{MultiLevelModel, MultiLevelTiles, ParallelSpec};

// ---------------------------------------------------------------------------
// Inline copy of the pre-multicore (sequential) multi-level assembly, used as
// an exact reference at threads == 1.
// ---------------------------------------------------------------------------

/// The seed's sequential per-level volume assembly, verbatim:
/// `count(outer tiles) × single_level_volume(extents = outer tiles)`.
fn legacy_level_volume(
    shape: &ConvShape,
    perm: &Permutation,
    tiles: &MultiLevelTiles,
    level: TilingLevel,
    options: &CostOptions,
) -> f64 {
    let tiles = tiles.normalized(shape);
    let extents = match level.outer() {
        None => mopt_repro::mopt_model::cost::RealTiles::full(shape),
        Some(outer) => *tiles.level(outer),
    };
    let per_outer =
        single_level_volume_general(shape, perm, tiles.level(level), &extents, options).total();
    let count: f64 = match level.outer() {
        None => 1.0,
        Some(outer) => {
            let t_outer = tiles.level(outer);
            ALL_INDICES
                .iter()
                .map(|&idx| (shape.extent(idx) as f64 / t_outer.get(idx).max(1e-12)).max(1.0))
                .product()
        }
    };
    count * per_outer
}

/// The seed's sequential capacity slack: raw tile footprint minus the whole
/// cache capacity.
fn legacy_capacity_slack(
    shape: &ConvShape,
    machine: &MachineModel,
    tiles: &MultiLevelTiles,
    level: TilingLevel,
) -> f64 {
    total_footprint(shape, tiles.level(level)) - machine.capacity(level) as f64
}

// ---------------------------------------------------------------------------
// Strategies and helpers
// ---------------------------------------------------------------------------

/// A generalized shape drawn from the strided × dilated × grouped grid.
fn general_shape_strategy() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2, // n
        1usize..=3, // k per group
        1usize..=3, // c per group
        1usize..=4, // groups
        1usize..=3, // r = s
        2usize..=7, // h = w
        1usize..=2, // stride
        1usize..=3, // dilation
    )
        .prop_map(|(n, kpg, cpg, groups, rs, hw, stride, dilation)| {
            ConvShape::new_general(
                n,
                kpg * groups,
                cpg * groups,
                rs,
                rs,
                hw,
                hw,
                stride,
                dilation,
                groups,
            )
            .expect("valid generalized shape")
        })
}

fn permutation_strategy() -> impl Strategy<Value = Permutation> {
    (0usize..5040).prop_map(|i| Permutation::enumerate_all()[i].clone())
}

/// Deterministic pseudo-random nested tiles from a seed.
fn seeded_config(shape: &ConvShape, perm: Permutation, seed: u64) -> TileConfig {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut level = |outer: [usize; 7]| {
        let mut t = TileSizes::ones();
        for (j, &idx) in ALL_INDICES.iter().enumerate() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let e = outer[j] as u64;
            t.set(idx, ((state >> 33) % e + 1) as usize);
        }
        t
    };
    let l3 = level(shape.extents());
    let l2 = level(l3.as_array());
    let l1 = level(l2.as_array());
    let reg = level(l1.as_array());
    TileConfig::new(perm, [reg, l1, l2, l3], TileSizes::ones()).normalized(shape)
}

fn random_tensors(shape: &ConvShape, seed: u64) -> (Tensor4, Tensor4) {
    let (ni, ci, hi, wi) = shape.input_dims();
    let (kk, kc, kr, ks) = shape.kernel_dims();
    (Tensor4::random(ni, ci, hi, wi, seed), Tensor4::random(kk, kc, kr, ks, seed + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// At `threads == 1` the multicore model's volumes, capacity slacks, and
    /// scaled costs equal the sequential expressions **exactly** — the
    /// property persisted schedule caches rely on.
    #[test]
    fn multicore_model_is_bit_identical_to_sequential_at_one_thread(
        shape in general_shape_strategy(),
        perm in permutation_strategy(),
        seed in 0u64..1_000_000,
        line in 1usize..=16,
    ) {
        let machine = MachineModel::tiny_test_machine();
        let config = seeded_config(&shape, perm.clone(), seed);
        let tiles = MultiLevelTiles::from_config(&config);
        let options = CostOptions { line_elems: line };
        for model in [
            MultiLevelModel::new(shape, machine.clone(), perm.clone()).with_options(options),
            // An explicit one-thread ParallelSpec must take the same path.
            MultiLevelModel::new(shape, machine.clone(), perm.clone())
                .with_options(options)
                .with_parallel(ParallelSpec::sequential()),
        ] {
            for level in TilingLevel::ALL {
                let expected = legacy_level_volume(&shape, &perm, &tiles, level, &options);
                prop_assert_eq!(model.level_volume(&tiles, level), expected);
                prop_assert_eq!(
                    model.capacity_slack(&tiles, level),
                    legacy_capacity_slack(&shape, &machine, &tiles, level)
                );
                let bw = machine.fill_bandwidth(level);
                let legacy_scaled = match level {
                    TilingLevel::L3 => expected / bw,
                    _ => expected / (bw * 1.0),
                };
                prop_assert_eq!(model.scaled_cost(&tiles, level), legacy_scaled);
            }
        }
    }

    /// `ParTiledConv` is bit-for-bit equal to the sequential `TiledConv`
    /// walk on both parallel axes, for thread counts from 1 to far beyond
    /// the partitioned extents.
    #[test]
    fn par_tiled_conv_is_bit_identical_to_sequential(
        shape in general_shape_strategy(),
        seed in 0u64..1_000_000,
        threads in 1usize..=10,
    ) {
        let config = seeded_config(&shape, Permutation::parse("kcrsnhw").unwrap(), seed);
        let (input, kernel) = random_tensors(&shape, seed);
        let expected = TiledConv::new(shape, config.clone(), 1).unwrap().run(&input, &kernel);
        for axis in ParallelAxis::ALL {
            for threads in [threads, threads * 16] {
                let par = ParTiledConv::new(shape, config.clone(), threads)
                    .unwrap()
                    .with_axis(axis);
                let got = par.run(&input, &kernel);
                prop_assert_eq!(got.as_slice(), expected.as_slice());
            }
        }
    }

    /// The parallel fused depthwise → pointwise executor is bit-for-bit
    /// equal to the sequential fused run (which is itself pinned bit-for-bit
    /// to the two naive convolutions) across bands, ReLU, strides,
    /// dilations, and thread counts beyond the band count.
    #[test]
    fn parallel_fused_dw_pw_is_bit_identical(
        channels in 2usize..=6,
        hw in 6usize..=12,
        k_out in 1usize..=5,
        stride in 1usize..=2,
        dilation in 1usize..=2,
        band in 1usize..=5,
        threads in 1usize..=9,
        relu_bit in 0usize..=1,
        seed in 0u64..1_000_000,
    ) {
        let rs = 3usize;
        prop_assume!((rs - 1) * dilation < hw);
        let mut dw = ConvShape::from_table1_dilated(channels, channels, hw, rs, stride, dilation);
        dw.groups = channels;
        let pw = ConvShape::new(1, k_out, channels, 1, 1, dw.h, dw.w, 1).unwrap();
        let fused = FusedDwPw::new(dw, pw)
            .unwrap()
            .with_band_rows(band)
            .with_relu_intermediate(relu_bit == 1);
        let (ni, ci, hi, wi) = dw.input_dims();
        let input = Tensor4::random(ni, ci, hi, wi, seed);
        let (dk, dc, dr, ds) = dw.kernel_dims();
        let dwk = Tensor4::random(dk, dc, dr, ds, seed + 1);
        let (pk, pc, pr, ps) = pw.kernel_dims();
        let pwk = Tensor4::random(pk, pc, pr, ps, seed + 2);
        let expected = fused.run(&input, &dwk, &pwk);
        for threads in [threads, threads * 13] {
            let got = fused.run_parallel(&input, &dwk, &pwk, threads);
            prop_assert_eq!(got.as_slice(), expected.as_slice());
        }
    }
}
