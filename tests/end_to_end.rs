//! Integration tests spanning the whole stack: optimizer → configuration →
//! executor → correctness, and model → simulator consistency.

use mopt_repro::baselines::OneDnnLike;
use mopt_repro::cache_sim::{CacheKind, TileTrafficSimulator, TraceSimulator};
use mopt_repro::conv_exec::naive::conv2d_naive;
use mopt_repro::conv_exec::{measure_gflops, MeasureOptions, Tensor4, TiledConv};
use mopt_repro::conv_spec::{benchmarks, ConvShape, MachineModel, TileConfig, TilingLevel};
use mopt_repro::mopt_core::optimizer::{heuristic_config, MOptOptimizer, OptimizerOptions};
use mopt_repro::mopt_model::multilevel::{MultiLevelModel, ParallelSpec};

fn fast_optimizer(shape: ConvShape, machine: &MachineModel, classes: usize) -> MOptOptimizer {
    let opts = OptimizerOptions { max_classes: classes, multistart: 0, ..OptimizerOptions::fast() };
    MOptOptimizer::new(shape, machine.clone(), opts)
}

#[test]
fn optimized_configuration_executes_correctly() {
    // The full pipeline the paper describes: model-driven optimization
    // produces a tiling configuration; the generated (here: interpreted)
    // tiled code must compute the same result as the reference convolution.
    let shape = ConvShape::new(1, 24, 12, 3, 3, 14, 14, 1).unwrap();
    let machine = MachineModel::i7_9700k();
    let result = fast_optimizer(shape, &machine, 2).optimize();
    let config = result.best().config.clone();

    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 10);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 11);
    let reference = conv2d_naive(&shape, &input, &kernel);
    let tiled = TiledConv::new(shape, config, 2).unwrap();
    let out = tiled.run(&input, &kernel);
    assert!(reference.allclose(&out, 1e-3));
}

#[test]
fn optimizer_beats_untiled_execution_in_simulated_traffic() {
    // The optimized configuration should move less (or equal) data at the
    // memory/L3 boundary than a register-only heuristic whose working set
    // does not fit any cache.
    let shape = ConvShape::new(1, 32, 32, 3, 3, 14, 14, 1).unwrap();
    let machine = MachineModel::i7_9700k();
    let result = fast_optimizer(shape, &machine, 3).optimize();
    let sim = TileTrafficSimulator::default();
    let optimized = sim.simulate(&shape, &result.best().config);
    // A degenerate configuration: tiny register tile, no cache blocking.
    let mut bad = TileConfig::untiled(&shape);
    *bad.level_mut(TilingLevel::Register) = mopt_repro::conv_spec::TileSizes::ones();
    let bad = bad.normalized(&shape);
    let unblocked = sim.simulate(&shape, &bad);
    let (_, opt_cost) = optimized.bottleneck(&machine, 1);
    let (_, bad_cost) = unblocked.bottleneck(&machine, 1);
    assert!(
        opt_cost <= bad_cost,
        "optimized bottleneck {opt_cost} should not exceed unblocked {bad_cost}"
    );
}

#[test]
fn model_and_trace_simulator_agree_on_ranking_small_operator() {
    // On a small operator where exact LRU simulation is feasible, the
    // analytical model and the exact simulator must agree on which of two
    // clearly different configurations is better at the L2/L3 boundaries.
    let shape = ConvShape::new(1, 16, 16, 3, 3, 12, 12, 1).unwrap();
    let machine = MachineModel::tiny_test_machine();
    let good = heuristic_config(&shape, &machine);
    let mut bad = TileConfig::untiled(&shape);
    *bad.level_mut(TilingLevel::Register) = mopt_repro::conv_spec::TileSizes::ones();
    let bad = bad.normalized(&shape);

    let model = MultiLevelModel::new(shape, machine.clone(), good.permutation.clone());
    let model_good = model.predict_config(&good);
    let model_bad = model.predict_config(&bad);

    let sim_good =
        TraceSimulator::new(&shape, &machine, CacheKind::IdealFullyAssociative).run(&good);
    let sim_bad = TraceSimulator::new(&shape, &machine, CacheKind::IdealFullyAssociative).run(&bad);

    let model_says_good_better =
        model_good.volume(TilingLevel::Register) <= model_bad.volume(TilingLevel::Register);
    let sim_says_good_better =
        sim_good.volume(TilingLevel::Register) <= sim_bad.volume(TilingLevel::Register);
    assert_eq!(model_says_good_better, sim_says_good_better);
    assert!(model_says_good_better, "blocked configuration should be better");
}

#[test]
fn library_baseline_and_mopt_configuration_both_compute_the_same_result() {
    let op = benchmarks::scaled_operators(12, 24).into_iter().find(|o| o.name == "R6").unwrap();
    let shape = op.shape;
    let machine = MachineModel::i7_9700k();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 20);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 21);
    let reference = conv2d_naive(&shape, &input, &kernel);

    let lib = OneDnnLike::new(machine.clone());
    let lib_out = lib.run(&shape, &input, &kernel);
    assert!(reference.allclose(&lib_out, 1e-3));

    let result = fast_optimizer(shape, &machine, 1).optimize();
    let mopt_out =
        TiledConv::new(shape, result.best().config.clone(), 1).unwrap().run(&input, &kernel);
    assert!(reference.allclose(&mopt_out, 1e-3));
}

#[test]
fn strided_benchmark_operators_execute_correctly_end_to_end() {
    // Every strided (stride-2) operator structure from Table 1, scaled down.
    // The MobileNet entries are true depthwise shapes, so this also covers
    // grouped execution end to end.
    let machine = MachineModel::i7_9700k();
    let ops = benchmarks::scaled_operators(10, 16);
    let strided: Vec<_> = ops.into_iter().filter(|o| o.is_strided()).collect();
    assert!(strided.iter().any(|o| o.shape.is_depthwise()), "expected depthwise M* operators");
    for op in strided {
        let shape = op.shape;
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 30);
        let kernel = Tensor4::random(kk, kc, kr, ks, 31);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let config = heuristic_config(&shape, &machine);
        let out = TiledConv::new(shape, config, 2).unwrap().run(&input, &kernel);
        assert!(reference.allclose(&out, 1e-3), "operator {}", op.name);
    }
}

#[test]
fn depthwise_and_dilated_operators_optimize_and_execute_end_to_end() {
    // The full pipeline on the generalized suites: optimize a scaled
    // MobileNetV2 depthwise stage and a dilated DeepLab-style operator, then
    // execute the chosen schedule and compare with the reference.
    let machine = MachineModel::i7_9700k();
    let scaled: Vec<_> = benchmarks::extended_operators()
        .into_iter()
        .filter(|op| op.name == "V5" || op.name == "D1" || op.name == "D5")
        .map(|mut op| {
            let s = &mut op.shape;
            let was_depthwise = s.is_depthwise();
            s.k = s.k.min(16);
            s.c = s.c.min(16);
            s.h = s.h.min(12);
            s.w = s.w.min(12);
            if was_depthwise {
                s.groups = s.k.min(s.c);
            } else {
                s.groups = 1;
            }
            op
        })
        .collect();
    assert_eq!(scaled.len(), 3);
    for op in scaled {
        let shape = op.shape;
        let result = fast_optimizer(shape, &machine, 2).optimize();
        let config = result.best().config.clone();
        let (ni, ci, hi, wi) = shape.input_dims();
        let (kk, kc, kr, ks) = shape.kernel_dims();
        let input = Tensor4::random(ni, ci, hi, wi, 50);
        let kernel = Tensor4::random(kk, kc, kr, ks, 51);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let out = TiledConv::new(shape, config, 2).unwrap().run(&input, &kernel);
        assert!(reference.allclose(&out, 1e-3), "operator {}", op.name);
    }
}

#[test]
fn measurement_harness_reports_consistent_gflops() {
    let shape = ConvShape::new(1, 8, 8, 3, 3, 10, 10, 1).unwrap();
    let machine = MachineModel::i7_9700k();
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 40);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 41);
    let conv = TiledConv::new(shape, heuristic_config(&shape, &machine), 1).unwrap();
    let m = measure_gflops(shape.flops() as f64, &MeasureOptions::quick(), || {
        std::hint::black_box(conv.run(&input, &kernel));
    });
    assert!(m.gflops > 0.0);
    assert!(m.min_seconds <= m.mean_seconds && m.mean_seconds <= m.max_seconds);
}

#[test]
fn parallel_specs_from_machines_are_valid_for_all_benchmarks() {
    for machine in [MachineModel::i7_9700k(), MachineModel::i9_10980xe()] {
        for op in benchmarks::all_operators() {
            let spec = ParallelSpec::default_for(&op.shape, machine.threads);
            assert!(spec.is_valid(), "invalid parallel spec for {} on {}", op.name, machine.name);
        }
    }
}
