//! Property-based tests on the core invariants of the analytical model, the
//! pruning theorem, the solver, and the executor, using proptest.

use proptest::prelude::*;

use mopt_repro::conv_exec::naive::conv2d_naive;
use mopt_repro::conv_exec::{Tensor4, TiledConv};
use mopt_repro::conv_spec::{
    ConvShape, LoopIndex, Permutation, TileConfig, TileSizes, ALL_INDICES,
};
use mopt_repro::mopt_model::cost::{single_level_volume, total_footprint, CostOptions, RealTiles};
use mopt_repro::mopt_model::prune::{classify, pruned_classes};
use mopt_repro::mopt_solver::{BarrierSolver, NlpSolver, PenaltySolver, Problem};

/// Strategy: a small but non-degenerate conv shape.
fn shape_strategy() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2,
        1usize..=12,
        1usize..=12,
        1usize..=3,
        1usize..=3,
        2usize..=10,
        2usize..=10,
        1usize..=2,
    )
        .prop_map(|(n, k, c, r, s, h, w, stride)| {
            ConvShape::new(n, k, c, r, s, h, w, stride).expect("non-zero extents")
        })
}

/// Strategy: one of the 5040 permutations.
fn permutation_strategy() -> impl Strategy<Value = Permutation> {
    (0usize..5040).prop_map(|i| Permutation::enumerate_all()[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cost expressions are lower-bounded by the compulsory traffic:
    /// every tensor must move at least once (output twice).
    #[test]
    fn single_level_volume_at_least_compulsory(shape in shape_strategy(), perm in permutation_strategy()) {
        let tiles = RealTiles::full(&shape);
        let dv = single_level_volume(&shape, &perm, &tiles, &CostOptions::default());
        let compulsory = (shape.input_elems() + shape.kernel_elems() + 2 * shape.output_elems()) as f64;
        prop_assert!(dv.total() >= compulsory - 1e-6);
    }

    /// Volumes are monotone: shrinking any one tile size (with the rest
    /// fixed) never decreases total data movement for the pruned-class
    /// representatives. (Restricted to stride 1: for strided convolutions the
    /// bounding-box input footprint of Eq. 4 counts rows that are never
    /// touched, so splitting a spatial tile can reduce the counted volume by
    /// a few elements — a known over-approximation of the paper's model.)
    #[test]
    fn volume_monotone_in_tile_sizes(shape in shape_strategy(), idx in 0usize..7) {
        prop_assume!(shape.stride == 1);
        let perm = pruned_classes()[0].representative.clone();
        let opts = CostOptions::default();
        let full = RealTiles::full(&shape);
        let loop_idx = ALL_INDICES[idx];
        let extent = shape.extent(loop_idx) as f64;
        prop_assume!(extent >= 2.0);
        let mut smaller = full;
        smaller.set(loop_idx, (extent / 2.0).floor().max(1.0));
        let v_full = single_level_volume(&shape, &perm, &full, &opts).total();
        let v_small = single_level_volume(&shape, &perm, &smaller, &opts).total();
        prop_assert!(v_small + 1e-9 >= v_full,
            "shrinking {loop_idx} reduced volume: {v_small} < {v_full}");
    }

    /// The pruning theorem, checked pointwise: for any permutation and tile
    /// sizes, the best pruned-class representative has volume no larger than
    /// that permutation's volume.
    #[test]
    fn pruned_classes_dominate_everywhere(
        shape in shape_strategy(),
        perm in permutation_strategy(),
        seed in 0u64..1000,
    ) {
        let mut tiles = RealTiles::ones();
        // Derive deterministic pseudo-random tile sizes from the seed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for &idx in &ALL_INDICES {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let e = shape.extent(idx) as u64;
            tiles.set(idx, ((state >> 33) % e + 1) as f64);
        }
        let opts = CostOptions::default();
        let other = single_level_volume(&shape, &perm, &tiles, &opts).total();
        let best_pruned = pruned_classes()
            .iter()
            .map(|c| single_level_volume(&shape, &c.representative, &tiles, &opts).total())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(best_pruned <= other * (1.0 + 1e-9),
            "pruned best {best_pruned} exceeds {other} for {perm}");
    }

    /// Classification is stable: every permutation either belongs to exactly
    /// one class (whose representative has an identical cost expression on a
    /// random point) or to none.
    #[test]
    fn classification_consistency(perm in permutation_strategy(), shape in shape_strategy()) {
        if let Some(id) = classify(&perm) {
            prop_assert!((1..=8).contains(&id));
            let rep = &pruned_classes()[id - 1].representative;
            let tiles = RealTiles::from_array([1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0])
                .clamped(&shape.extents().map(|v| v as f64));
            let opts = CostOptions::default();
            let a = single_level_volume(&shape, &perm, &tiles, &opts).total();
            let b = single_level_volume(&shape, rep, &tiles, &opts).total();
            prop_assert!((a - b).abs() <= 1e-9 * a.max(b).max(1.0));
        }
    }

    /// The footprint used in the capacity constraint agrees between the
    /// real-valued model and the integer tile computation.
    #[test]
    fn footprints_agree_between_model_and_spec(
        shape in shape_strategy(),
        fracs in proptest::array::uniform7(0.0f64..1.0),
    ) {
        let mut tiles = TileSizes::ones();
        for (j, &idx) in ALL_INDICES.iter().enumerate() {
            let e = shape.extent(idx);
            tiles.set(idx, ((fracs[j] * e as f64).floor() as usize + 1).min(e));
        }
        let real: RealTiles = (&tiles).into();
        let model_fp = total_footprint(&shape, &real);
        let spec_fp = tiles.footprint(&shape) as f64;
        prop_assert!((model_fp - spec_fp).abs() < 1e-9);
    }

    /// The tiled executor matches the reference convolution for arbitrary
    /// shapes, tile sizes, and permutations.
    #[test]
    fn tiled_executor_matches_naive(
        shape in shape_strategy(),
        perm in permutation_strategy(),
        seed in 0u64..10_000,
    ) {
        // Keep the work small.
        prop_assume!(shape.flops() <= 600_000);
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut level = |outer: [usize; 7]| {
            let mut t = TileSizes::ones();
            for (j, &idx) in ALL_INDICES.iter().enumerate() {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let e = outer[j] as u64;
                t.set(idx, ((state >> 33) % e + 1) as usize);
            }
            t
        };
        let l3 = level(shape.extents());
        let l2 = level(l3.as_array());
        let l1 = level(l2.as_array());
        let reg = level(l1.as_array());
        let config = TileConfig::new(perm, [reg, l1, l2, l3], TileSizes::ones()).normalized(&shape);
        let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), seed);
        let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, seed + 1);
        let reference = conv2d_naive(&shape, &input, &kernel);
        let out = TiledConv::new(shape, config, 1).unwrap().run(&input, &kernel);
        prop_assert!(reference.allclose(&out, 1e-3));
    }

    /// Solver results are always feasible for capacity-style problems and at
    /// least as good as the starting point.
    #[test]
    fn solvers_return_feasible_improving_points(cap in 64.0f64..4096.0, n in 64.0f64..2048.0) {
        let problem = Problem::new(2)
            .with_bounds(vec![1.0, 1.0], vec![n, n])
            .with_objective(move |x| n * n * (1.0 / x[0] + 1.0 / x[1]))
            .with_constraint(move |x| x[0] * x[1] - cap);
        let x0 = [1.0, 1.0];
        let f0 = problem.objective(&x0);
        for result in [
            BarrierSolver::fast().solve(&problem, &x0),
            PenaltySolver::default().solve(&problem, &x0),
        ] {
            prop_assert!(result.feasible, "violation {}", result.max_violation);
            prop_assert!(result.objective <= f0 + 1e-9);
        }
    }

    /// The loop-index algebra: every index is present in exactly two tensors,
    /// and reduction indices are exactly those absent from the output.
    #[test]
    fn index_presence_invariant(idx in 0usize..7) {
        let i = ALL_INDICES[idx];
        let presences = [i.present_in_input(), i.present_in_output(), i.present_in_kernel()];
        prop_assert_eq!(presences.iter().filter(|&&p| p).count(), 2);
        prop_assert_eq!(i.is_reduction(), !i.present_in_output());
        prop_assert_eq!(LoopIndex::parse(i.name()), Some(i));
    }
}
