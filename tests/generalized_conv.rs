//! Property tests for the generalized (strided × dilated × grouped)
//! convolution support.
//!
//! Two families of properties:
//!
//! 1. **Legacy equivalence** — for `dilation == 1, groups == 1` shapes the
//!    generalized code paths must be *bit-identical* to the pre-generalization
//!    implementation: the cost model is compared against an inline copy of the
//!    pre-change expressions with exact (`==`) floating-point equality, the
//!    reference executor against an inline copy of the pre-change seven-loop
//!    nest with exact output equality, and shapes parsed from legacy wire JSON
//!    (no `dilation`/`groups` fields) must produce identical schedules.
//! 2. **Generalized correctness** — across a random strided × dilated ×
//!    grouped grid, the naive reference, the multi-level tiled executor, and
//!    the im2col+GEMM path must agree.

use proptest::prelude::*;

use mopt_repro::conv_exec::im2col::{conv2d_im2col, GemmBlocking};
use mopt_repro::conv_exec::naive::conv2d_naive;
use mopt_repro::conv_exec::{Tensor4, TiledConv};
use mopt_repro::conv_spec::MachineModel;
use mopt_repro::conv_spec::{
    ConvShape, LoopIndex, Permutation, TileConfig, TileSizes, ALL_INDICES,
};
use mopt_repro::mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};
use mopt_repro::mopt_model::cost::{
    single_level_volume, total_footprint, ArrayVolumes, CostOptions, RealTiles,
};

// ---------------------------------------------------------------------------
// Inline copies of the pre-generalization implementations (the "pre-change
// path"), used as exact references for dense shapes.
// ---------------------------------------------------------------------------

/// The seed's single-level volume expressions, verbatim (element granularity
/// and spatial-locality extension, dense semantics only).
fn legacy_single_level_volume(
    shape: &ConvShape,
    perm: &Permutation,
    tiles: &RealTiles,
    line: usize,
) -> ArrayVolumes {
    let extents = RealTiles::from_array(shape.extents().map(|v| v as f64));
    let t = tiles.clamped(&extents.as_array());
    let stride = shape.stride as f64;

    let lines = |elems: f64| -> f64 {
        if line <= 1 || elems <= 0.0 {
            elems.max(0.0)
        } else {
            (elems / line as f64).ceil().max(1.0)
        }
    };
    let reuse_position = |present: &dyn Fn(LoopIndex) -> bool| -> usize {
        perm.inner_to_outer()
            .iter()
            .enumerate()
            .find(|(_, idx)| present(**idx))
            .map(|(i, _)| i + 1)
            .expect("present index")
    };
    let trip_product = |from_pos: usize| -> f64 {
        let inner = perm.inner_to_outer();
        let mut prod = 1.0;
        for (i, idx) in inner.iter().enumerate() {
            if i + 1 >= from_pos {
                let n = extents.get(*idx);
                let tt = t.get(*idx).max(1e-12);
                prod *= (n / tt).max(1.0);
            }
        }
        prod
    };

    let r_out = reuse_position(&|i: LoopIndex| i.present_in_output());
    let out_fp = t.get(LoopIndex::N)
        * t.get(LoopIndex::K)
        * t.get(LoopIndex::H)
        * lines(t.get(LoopIndex::W));
    let out_vol = 2.0 * trip_product(r_out) * out_fp;

    let r_ker = reuse_position(&|i: LoopIndex| i.present_in_kernel());
    let ker_fp = t.get(LoopIndex::K)
        * t.get(LoopIndex::C)
        * t.get(LoopIndex::R)
        * lines(t.get(LoopIndex::S));
    let ker_vol = trip_product(r_ker) * ker_fp;

    let r_in = reuse_position(&|i: LoopIndex| i.present_in_input());
    let at_r_in = perm.inner_to_outer()[r_in - 1];
    let outer_prod = trip_product(r_in + 1);
    let tn = t.get(LoopIndex::N);
    let tc = t.get(LoopIndex::C);
    let th = t.get(LoopIndex::H);
    let tw = t.get(LoopIndex::W);
    let tr = t.get(LoopIndex::R);
    let ts = t.get(LoopIndex::S);
    let nh = extents.get(LoopIndex::H);
    let nw = extents.get(LoopIndex::W);
    let nr = extents.get(LoopIndex::R);
    let ns = extents.get(LoopIndex::S);
    let rows_tile = (th - 1.0) * stride + tr;
    let cols_tile = (tw - 1.0) * stride + ts;
    let in_vol = match at_r_in {
        LoopIndex::N | LoopIndex::C => {
            let in_fp = tn * tc * rows_tile * lines(cols_tile);
            trip_product(r_in) * in_fp
        }
        LoopIndex::W => {
            let partial = tn * tc * rows_tile * lines(stride * (nw - tw).max(0.0));
            let first = tn * tc * rows_tile * lines(cols_tile);
            outer_prod * (partial + first)
        }
        LoopIndex::S => {
            let partial = tn * tc * rows_tile * lines((ns - ts).max(0.0));
            let first = tn * tc * rows_tile * lines(cols_tile);
            outer_prod * (partial + first)
        }
        LoopIndex::H => {
            let partial = tn * tc * (stride * (nh - th).max(0.0)) * lines(cols_tile);
            let first = tn * tc * rows_tile * lines(cols_tile);
            outer_prod * (partial + first)
        }
        LoopIndex::R => {
            let partial = tn * tc * (nr - tr).max(0.0) * lines(cols_tile);
            let first = tn * tc * rows_tile * lines(cols_tile);
            outer_prod * (partial + first)
        }
        LoopIndex::K => unreachable!("k is never present in the input tensor"),
    };

    ArrayVolumes { input: in_vol, kernel: ker_vol, output: out_vol }
}

/// The seed's reference convolution, verbatim (dense semantics only).
fn legacy_conv2d_naive(shape: &ConvShape, input: &Tensor4, kernel: &Tensor4) -> Tensor4 {
    let mut out = Tensor4::zeros(shape.n, shape.k, shape.h, shape.w);
    for n in 0..shape.n {
        for k in 0..shape.k {
            for c in 0..shape.c {
                for r in 0..shape.r {
                    for s in 0..shape.s {
                        for h in 0..shape.h {
                            for w in 0..shape.w {
                                let x = input.at(n, c, h * shape.stride + r, w * shape.stride + s);
                                let kv = kernel.at(k, c, r, s);
                                *out.at_mut(n, k, h, w) += x * kv;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A dense (dilation 1, groups 1) shape, as the seed generated them.
fn dense_shape_strategy() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2,
        1usize..=10,
        1usize..=10,
        1usize..=3,
        1usize..=3,
        2usize..=9,
        2usize..=9,
        1usize..=2,
    )
        .prop_map(|(n, k, c, r, s, h, w, stride)| {
            ConvShape::new(n, k, c, r, s, h, w, stride).expect("valid dense shape")
        })
}

/// A generalized shape drawn from the strided × dilated × grouped grid.
/// Channel counts are built as multiples of the group count so the shape is
/// always valid; depthwise (`groups == c == k`) arises when both per-group
/// counts draw 1 with `groups > 1`.
fn general_shape_strategy() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2, // n
        1usize..=3, // k per group
        1usize..=3, // c per group
        1usize..=4, // groups
        1usize..=3, // r = s
        2usize..=7, // h = w
        1usize..=2, // stride
        1usize..=3, // dilation
    )
        .prop_map(|(n, kpg, cpg, groups, rs, hw, stride, dilation)| {
            ConvShape::new_general(
                n,
                kpg * groups,
                cpg * groups,
                rs,
                rs,
                hw,
                hw,
                stride,
                dilation,
                groups,
            )
            .expect("valid generalized shape")
        })
}

fn permutation_strategy() -> impl Strategy<Value = Permutation> {
    (0usize..5040).prop_map(|i| Permutation::enumerate_all()[i].clone())
}

/// Deterministic pseudo-random tiles from a seed (nested per level).
fn seeded_config(shape: &ConvShape, perm: Permutation, seed: u64) -> TileConfig {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut level = |outer: [usize; 7]| {
        let mut t = TileSizes::ones();
        for (j, &idx) in ALL_INDICES.iter().enumerate() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let e = outer[j] as u64;
            t.set(idx, ((state >> 33) % e + 1) as usize);
        }
        t
    };
    let l3 = level(shape.extents());
    let l2 = level(l3.as_array());
    let l1 = level(l2.as_array());
    let reg = level(l1.as_array());
    TileConfig::new(perm, [reg, l1, l2, l3], TileSizes::ones()).normalized(shape)
}

fn random_tensors(shape: &ConvShape, seed: u64) -> (Tensor4, Tensor4) {
    let (ni, ci, hi, wi) = shape.input_dims();
    let (kk, kc, kr, ks) = shape.kernel_dims();
    (Tensor4::random(ni, ci, hi, wi, seed), Tensor4::random(kk, kc, kr, ks, seed + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Cost model, dense shapes: the generalized expressions equal the
    /// seed's expressions **exactly** (same floating-point values, not just
    /// within tolerance), for every permutation, random tile sizes, and both
    /// the element-granularity and spatial-locality variants.
    #[test]
    fn dense_cost_model_values_are_bit_identical(
        shape in dense_shape_strategy(),
        perm in permutation_strategy(),
        fracs in proptest::array::uniform7(0.0f64..1.0),
        line in 1usize..=16,
    ) {
        let mut tiles = RealTiles::ones();
        for (j, &idx) in ALL_INDICES.iter().enumerate() {
            let e = shape.extent(idx) as f64;
            tiles.set(idx, 1.0 + fracs[j] * (e - 1.0));
        }
        let general = single_level_volume(&shape, &perm, &tiles, &CostOptions { line_elems: line });
        let legacy = legacy_single_level_volume(&shape, &perm, &tiles, line);
        prop_assert!(general.input == legacy.input,
            "input volume differs: {} vs legacy {}", general.input, legacy.input);
        prop_assert!(general.kernel == legacy.kernel,
            "kernel volume differs: {} vs legacy {}", general.kernel, legacy.kernel);
        prop_assert!(general.output == legacy.output,
            "output volume differs: {} vs legacy {}", general.output, legacy.output);
        // The capacity-constraint footprint is exact too (both forms).
        let legacy_rows = (tiles.get(LoopIndex::H) - 1.0) * shape.stride as f64
            + tiles.get(LoopIndex::R);
        let legacy_cols = (tiles.get(LoopIndex::W) - 1.0) * shape.stride as f64
            + tiles.get(LoopIndex::S);
        let legacy_fp = tiles.get(LoopIndex::N) * tiles.get(LoopIndex::C)
            * legacy_rows * legacy_cols
            + tiles.get(LoopIndex::K) * tiles.get(LoopIndex::C)
                * tiles.get(LoopIndex::R) * tiles.get(LoopIndex::S)
            + tiles.get(LoopIndex::N) * tiles.get(LoopIndex::K)
                * tiles.get(LoopIndex::H) * tiles.get(LoopIndex::W);
        prop_assert!(total_footprint(&shape, &tiles) == legacy_fp);
    }

    /// Execution, dense shapes: the generalized reference convolution is
    /// bit-identical to the seed's seven-loop nest (same loop order, same
    /// operations ⇒ same `f32` results, compared with `==`).
    #[test]
    fn dense_naive_execution_is_bit_identical(
        shape in dense_shape_strategy(),
        seed in 0u64..10_000,
    ) {
        prop_assume!(shape.flops() <= 400_000);
        let (input, kernel) = random_tensors(&shape, seed);
        let general = conv2d_naive(&shape, &input, &kernel);
        let legacy = legacy_conv2d_naive(&shape, &input, &kernel);
        prop_assert!(general.as_slice() == legacy.as_slice(),
            "naive outputs differ bitwise for {shape}");
    }

    /// Schedules, dense shapes: a shape parsed from legacy wire JSON (no
    /// `dilation`/`groups` fields) is the same shape and produces the exact
    /// same optimizer result (bit-identical predicted costs and tiles).
    #[test]
    fn dense_schedules_match_legacy_wire_shapes(
        kc in 2usize..=8,
        hw in 6usize..=12,
        stride in 1usize..=2,
    ) {
        let shape = ConvShape::from_table1(2 * kc, kc, hw + 3, 3, stride);
        let legacy_json = format!(
            "{{\"n\":{},\"k\":{},\"c\":{},\"r\":{},\"s\":{},\"h\":{},\"w\":{},\"stride\":{}}}",
            shape.n, shape.k, shape.c, shape.r, shape.s, shape.h, shape.w, shape.stride
        );
        let parsed: ConvShape = serde_json::from_str(&legacy_json).expect("legacy JSON parses");
        prop_assert_eq!(parsed, shape);
        let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
        let machine = MachineModel::tiny_test_machine();
        let a = MOptOptimizer::new(shape, machine.clone(), options.clone()).optimize();
        let b = MOptOptimizer::new(parsed, machine, options).optimize();
        prop_assert_eq!(a.ranked, b.ranked);
    }

    /// Correctness grid: naive vs tiled vs im2col across random
    /// strided × dilated × grouped shapes, permutations, tile sizes, and
    /// thread counts.
    #[test]
    fn executors_agree_on_the_generalized_grid(
        shape in general_shape_strategy(),
        perm in permutation_strategy(),
        seed in 0u64..10_000,
        threads in 1usize..=3,
    ) {
        prop_assume!(shape.flops() <= 400_000);
        let (input, kernel) = random_tensors(&shape, seed);
        let reference = conv2d_naive(&shape, &input, &kernel);

        let config = seeded_config(&shape, perm, seed);
        let tiled = TiledConv::new(shape, config, threads).unwrap().run(&input, &kernel);
        prop_assert!(reference.allclose(&tiled, 1e-3),
            "tiled executor diverges for {shape} (threads {threads}): max diff {}",
            reference.max_abs_diff(&tiled));

        let gemm = conv2d_im2col(&shape, &input, &kernel, &GemmBlocking::default(), threads);
        prop_assert!(reference.allclose(&gemm, 1e-3),
            "im2col executor diverges for {shape} (threads {threads}): max diff {}",
            reference.max_abs_diff(&gemm));
    }

    /// The generalized footprint agrees between the integer (`TileSizes`)
    /// and continuous (`RealTiles`) forms whenever the K tile does not split
    /// a group (where the integer form's ceil and the continuous ratio
    /// coincide) — in particular always for dense and depthwise shapes.
    #[test]
    fn footprints_agree_for_aligned_k_tiles(
        shape in general_shape_strategy(),
        fracs in proptest::array::uniform7(0.0f64..1.0),
    ) {
        let mut tiles = TileSizes::ones();
        for (j, &idx) in ALL_INDICES.iter().enumerate() {
            let e = shape.extent(idx);
            tiles.set(idx, ((fracs[j] * e as f64).floor() as usize + 1).min(e));
        }
        // Align the K tile to a whole number of groups.
        let k_per_group = shape.k_per_group().max(1);
        let k_groups = tiles.get(LoopIndex::K).div_ceil(k_per_group);
        tiles.set(LoopIndex::K, (k_groups * k_per_group).min(shape.k));
        let real: RealTiles = (&tiles).into();
        let model_fp = total_footprint(&shape, &real);
        let spec_fp = tiles.footprint(&shape) as f64;
        prop_assert!((model_fp - spec_fp).abs() < 1e-9,
            "footprints diverge for {shape}: model {model_fp} vs spec {spec_fp}");
    }
}
