//! Fingerprint-stability regression tests.
//!
//! Persisted schedule-cache snapshots, the graph-plan cache, and any
//! external tooling key on `ConvShape::fingerprint`,
//! `MachineModel::fingerprint`, and `Graph::fingerprint`. Those keys must
//! never change silently across refactors — a drifted fingerprint turns
//! every warm snapshot cold and disconnects old plans from their graphs.
//! This test pins the *exact* values for representative Table-1 and V-suite
//! shapes, the three machine presets, and two builder blocks. If one of
//! these assertions fails, a fingerprinted input changed: either revert the
//! change, or bump the snapshot format version (`SNAPSHOT_VERSION`) and
//! update these constants deliberately.

use conv_spec::{benchmarks, canonicalize, ConvShape, MachineModel};
use mopt_graph::builders;

fn shape_fp(name: &str) -> u64 {
    benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown op {name}")).shape.fingerprint()
}

fn canon_fp(name: &str) -> u64 {
    let shape = benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown op {name}")).shape;
    canonicalize(&shape).0.fingerprint()
}

#[test]
fn table1_shape_fingerprints_are_pinned() {
    // Yolo-9000 first and last, a strided ResNet layer, a true-depthwise
    // MobileNet stage.
    assert_eq!(shape_fp("Y0"), 0x1fc1971c1b4dd226);
    assert_eq!(shape_fp("Y23"), 0x03ebf9c493a00e7a);
    assert_eq!(shape_fp("R1*"), 0x8a178f6e72b03c85);
    assert_eq!(shape_fp("M9"), 0xc840842c60791958);
}

#[test]
fn extended_suite_shape_fingerprints_are_pinned() {
    // A MobileNetV2 depthwise stage and a dilation-4 DeepLab operator: the
    // generalized fields (groups, dilation) feed the fingerprint too.
    assert_eq!(shape_fp("V5"), 0x101fee14d5000f24);
    assert_eq!(shape_fp("D2"), 0x5c24775e7fe0c040);
}

#[test]
fn canonical_spec_fingerprints_are_pinned() {
    // The schedule database pages are keyed by canonical-spec fingerprints;
    // a drift here silently orphans every populated database. M9 is its own
    // canonical form (square kernel, h ≤ w, extents on the pad quantum), so
    // its canonical fingerprint must equal its raw one.
    assert_eq!(canon_fp("Y0"), 0x03966d830a9fab26);
    assert_eq!(canon_fp("Y23"), 0xd314a089e499979a);
    assert_eq!(canon_fp("R1*"), 0xfc5632574350afe5);
    assert_eq!(canon_fp("M9"), 0xc840842c60791958);
    assert_eq!(canon_fp("M9"), shape_fp("M9"));
    assert_eq!(canon_fp("V5"), 0x251775f12bcf3c64);
    assert_eq!(canon_fp("D2"), 0x3c2657a537d0af20);
}

#[test]
fn distinct_raw_shapes_share_one_canonical_entry() {
    // An R/S-transposed pair: different raw fingerprints, one database
    // entry.
    let a = ConvShape::new(1, 16, 8, 3, 5, 12, 10, 1).unwrap();
    let b = ConvShape::new(1, 16, 8, 5, 3, 10, 12, 1).unwrap();
    assert_ne!(a.fingerprint(), b.fingerprint());
    assert_eq!(canonicalize(&a).0.fingerprint(), 0x1b2c14067c0b595b);
    assert_eq!(canonicalize(&b).0.fingerprint(), 0x1b2c14067c0b595b);
    // A divisor-padding pair: 57x57 pads up to the 64x64 entry, so both
    // raw shapes resolve to the 64x64 canonical spec.
    let p = ConvShape::new(1, 16, 8, 3, 3, 57, 57, 1).unwrap();
    let q = ConvShape::new(1, 16, 8, 3, 3, 64, 64, 1).unwrap();
    assert_ne!(p.fingerprint(), q.fingerprint());
    assert_eq!(canonicalize(&p).0.fingerprint(), 0x922a406e193674dd);
    assert_eq!(canonicalize(&p).0.fingerprint(), canonicalize(&q).0.fingerprint());
    assert_eq!(canonicalize(&q).0.fingerprint(), q.fingerprint());
}

#[test]
fn machine_fingerprints_are_pinned() {
    assert_eq!(MachineModel::i7_9700k().fingerprint(), 0x9816bf4b53bbc120);
    assert_eq!(MachineModel::i9_10980xe().fingerprint(), 0x782972077507640c);
    assert_eq!(MachineModel::tiny_test_machine().fingerprint(), 0x78eb150ec3959242);
}

#[test]
fn builder_graph_fingerprints_are_pinned() {
    // Graph fingerprints fold in node names, ops, shape fingerprints, edges,
    // and tensor layouts; pinning two blocks pins the whole chain.
    assert_eq!(builders::mobilenet_v2_block(5).unwrap().fingerprint(), 0x5787f63fa367440c);
    assert_eq!(builders::resnet_residual_block("R2").unwrap().fingerprint(), 0xacdee62815802e41);
}

mod canonical_roundtrip {
    use conv_exec::naive::conv2d_naive;
    use conv_exec::{Tensor4, TiledConv};
    use conv_spec::{canonicalize, ConvShape, MachineModel};
    use mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};
    use proptest::prelude::*;

    /// Strategy: a small shape that still exercises the canonical
    /// symmetries — `r > s` triggers the spatial transpose, `h`/`w` above
    /// the pad quantum trigger divisor padding.
    fn small_shape() -> impl Strategy<Value = ConvShape> {
        (
            1usize..=2,
            1usize..=8,
            1usize..=8,
            1usize..=3,
            1usize..=3,
            2usize..=10,
            2usize..=10,
            1usize..=2,
        )
            .prop_map(|(n, k, c, r, s, h, w, stride)| {
                ConvShape::new(n, k, c, r, s, h, w, stride).expect("non-zero extents")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The database stores schedules in canonical coordinates. Mapping a
        /// directly-solved schedule into canonical coordinates and back must
        /// be the identity, so the denormalized schedule executes bit-for-bit
        /// equal to solving the raw shape directly. A schedule solved on the
        /// canonical (possibly transposed / padded) spec, denormalized to the
        /// raw shape, must also be valid and compute the right convolution.
        #[test]
        fn denormalized_schedules_execute_bit_for_bit(
            shape in small_shape(),
            seed in 0u64..1000,
        ) {
            let machine = MachineModel::tiny_test_machine();
            let options = OptimizerOptions { max_classes: 1, ..OptimizerOptions::fast() };
            let direct =
                MOptOptimizer::new(shape, machine.clone(), options.clone()).optimize().best().config.clone();

            let (canonical, transform) = canonicalize(&shape);
            let stored = transform.canonicalize_config(&direct);
            let roundtrip = transform.denormalize_config(&stored);
            prop_assert_eq!(&roundtrip, &direct);

            let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), seed);
            let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, seed + 1);
            let a = TiledConv::new(shape, direct, 1).unwrap().run(&input, &kernel);
            let b = TiledConv::new(shape, roundtrip, 1).unwrap().run(&input, &kernel);
            prop_assert_eq!(a.as_slice(), b.as_slice());

            let canon_best =
                MOptOptimizer::new(canonical.shape, machine, options).optimize().best().config.clone();
            let adapted = transform.denormalize_config(&canon_best);
            prop_assert!(adapted.validate(&shape).is_ok());
            let reference = conv2d_naive(&shape, &input, &kernel);
            let out = TiledConv::new(shape, adapted, 1).unwrap().run(&input, &kernel);
            prop_assert!(reference.allclose(&out, 1e-3));
        }
    }
}

#[test]
fn fingerprints_are_process_stable() {
    // The FNV-1a fingerprints must not depend on process-randomized hashing:
    // recomputing in-process always agrees (std::hash::SipHash would not).
    for name in ["Y0", "R1*", "M9", "V5", "D2"] {
        assert_eq!(shape_fp(name), shape_fp(name));
    }
    assert_eq!(
        builders::mobilenet_v2_block(5).unwrap().fingerprint(),
        builders::mobilenet_v2_block(5).unwrap().fingerprint()
    );
}
