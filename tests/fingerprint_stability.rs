//! Fingerprint-stability regression tests.
//!
//! Persisted schedule-cache snapshots, the graph-plan cache, and any
//! external tooling key on `ConvShape::fingerprint`,
//! `MachineModel::fingerprint`, and `Graph::fingerprint`. Those keys must
//! never change silently across refactors — a drifted fingerprint turns
//! every warm snapshot cold and disconnects old plans from their graphs.
//! This test pins the *exact* values for representative Table-1 and V-suite
//! shapes, the three machine presets, and two builder blocks. If one of
//! these assertions fails, a fingerprinted input changed: either revert the
//! change, or bump the snapshot format version (`SNAPSHOT_VERSION`) and
//! update these constants deliberately.

use conv_spec::{benchmarks, MachineModel};
use mopt_graph::builders;

fn shape_fp(name: &str) -> u64 {
    benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown op {name}")).shape.fingerprint()
}

#[test]
fn table1_shape_fingerprints_are_pinned() {
    // Yolo-9000 first and last, a strided ResNet layer, a true-depthwise
    // MobileNet stage.
    assert_eq!(shape_fp("Y0"), 0x1fc1971c1b4dd226);
    assert_eq!(shape_fp("Y23"), 0x03ebf9c493a00e7a);
    assert_eq!(shape_fp("R1*"), 0x8a178f6e72b03c85);
    assert_eq!(shape_fp("M9"), 0xc840842c60791958);
}

#[test]
fn extended_suite_shape_fingerprints_are_pinned() {
    // A MobileNetV2 depthwise stage and a dilation-4 DeepLab operator: the
    // generalized fields (groups, dilation) feed the fingerprint too.
    assert_eq!(shape_fp("V5"), 0x101fee14d5000f24);
    assert_eq!(shape_fp("D2"), 0x5c24775e7fe0c040);
}

#[test]
fn machine_fingerprints_are_pinned() {
    assert_eq!(MachineModel::i7_9700k().fingerprint(), 0x9816bf4b53bbc120);
    assert_eq!(MachineModel::i9_10980xe().fingerprint(), 0x782972077507640c);
    assert_eq!(MachineModel::tiny_test_machine().fingerprint(), 0x78eb150ec3959242);
}

#[test]
fn builder_graph_fingerprints_are_pinned() {
    // Graph fingerprints fold in node names, ops, shape fingerprints, edges,
    // and tensor layouts; pinning two blocks pins the whole chain.
    assert_eq!(builders::mobilenet_v2_block(5).unwrap().fingerprint(), 0x5787f63fa367440c);
    assert_eq!(builders::resnet_residual_block("R2").unwrap().fingerprint(), 0xacdee62815802e41);
}

#[test]
fn fingerprints_are_process_stable() {
    // The FNV-1a fingerprints must not depend on process-randomized hashing:
    // recomputing in-process always agrees (std::hash::SipHash would not).
    for name in ["Y0", "R1*", "M9", "V5", "D2"] {
        assert_eq!(shape_fp(name), shape_fp(name));
    }
    assert_eq!(
        builders::mobilenet_v2_block(5).unwrap().fingerprint(),
        builders::mobilenet_v2_block(5).unwrap().fingerprint()
    );
}
