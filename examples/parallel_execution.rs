//! Multicore planning and parallel execution, end to end: plan one layer at
//! 1/2/4/8 threads with the contention-aware multicore model, execute each
//! plan with the scoped-thread parallel executor (verifying bit-for-bit
//! equality with the sequential walk), and cross-check the model's
//! DRAM-traffic axis against the tile-granularity simulator on the
//! per-thread slices.
//!
//! Run with `cargo run --release --example parallel_execution`.

use std::time::Instant;

use mopt_repro::cache_sim::TileTrafficSimulator;
use mopt_repro::conv_exec::{ParTiledConv, Tensor4, TiledConv};
use mopt_repro::conv_spec::{ConvShape, LoopIndex, MachineModel, TilingLevel, ALL_INDICES};
use mopt_repro::mopt_core::{MOptOptimizer, OptimizerOptions};

fn main() {
    // Extents divisible by 8 so every thread count slices evenly on both
    // parallel axes.
    let shape = ConvShape::new(1, 64, 32, 3, 3, 32, 32, 1).unwrap();
    let machine = MachineModel::i7_9700k();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("operator: {shape}");
    println!("machine (modeled): {machine}");
    println!("host parallelism:  {host} (measured speedup is bounded by this)\n");

    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 7);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 8);
    let sim = TileTrafficSimulator::default();

    println!(
        "{:>7} {:>6} {:>14} {:>14} {:>10} {:>10} {:>8}",
        "threads", "axis", "model DRAM", "tilesim DRAM", "exec ms", "speedup", "exact"
    );
    let mut sequential_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let options =
            OptimizerOptions { threads, max_classes: 3, multistart: 0, ..Default::default() };
        let result = MOptOptimizer::new(shape, machine.clone(), options).optimize();
        let best = result.best();
        let config = best.config.clone();

        // Modeled DRAM traffic (whole chip: summed across threads).
        let model_dram = best.prediction.volume(TilingLevel::L3);

        // Measured axis: simulate one thread's slice of the problem with the
        // same schedule, then sum across threads.
        let mut sliced = shape;
        for &idx in &ALL_INDICES {
            let f = config.parallel.get(idx);
            if f > 1 {
                match idx {
                    LoopIndex::N => sliced.n /= f,
                    LoopIndex::K => sliced.k /= f,
                    LoopIndex::H => sliced.h /= f,
                    LoopIndex::W => sliced.w /= f,
                    _ => {}
                }
            }
        }
        let per_thread = sim.simulate(&sliced, &config.normalized(&sliced));
        let tilesim_dram = threads as f64 * per_thread.volume(TilingLevel::L3);

        // Execute: the parallel run must be bit-for-bit the sequential walk.
        let sequential = TiledConv::new(shape, config.clone(), 1).unwrap();
        let reference = sequential.run(&input, &kernel);
        let par = ParTiledConv::new(shape, config.clone(), threads).unwrap();
        let started = Instant::now();
        let reps = 3;
        let mut out = par.run(&input, &kernel);
        for _ in 1..reps {
            out = par.run(&input, &kernel);
        }
        let ms = started.elapsed().as_secs_f64() * 1e3 / reps as f64;
        if threads == 1 {
            sequential_ms = ms;
        }
        let exact = out.as_slice() == reference.as_slice();
        assert!(exact, "parallel execution diverged from the sequential walk");

        println!(
            "{:>7} {:>6} {:>14.0} {:>14.0} {:>10.2} {:>9.2}x {:>8}",
            threads,
            config.parallel_axis().name(),
            model_dram,
            tilesim_dram,
            ms,
            sequential_ms / ms,
            exact,
        );
    }

    println!(
        "\nModel and simulator agree on the traffic axis: slicing the problem \
         across threads loses cross-slice reuse, so chip-total DRAM traffic \
         grows with the thread count while per-core work shrinks — the trade \
         the optimizer weighs when it searches the parallel axis. Measured \
         wall-clock speedup tracks min(threads, host cores); on a \
         single-core host the parallel runs only demonstrate exactness."
    );
}
