//! Fusion-aware graph planning: plan a MobileNetV2 inverted-residual block
//! as a graph, compare the fused plan's traffic against planning every layer
//! in isolation, and cross-check the win with the tile-granularity traffic
//! simulator.
//!
//! ```text
//! cargo run --release --example graph_planning
//! ```

use cache_sim::TileTrafficSimulator;
use conv_spec::{MachineModel, TilingLevel};
use mopt_core::{MOptOptimizer, OptimizerOptions};
use mopt_graph::{builders, GraphPlanner};
use mopt_service::{CacheKey, ScheduleCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineModel::i7_9700k();
    let options = OptimizerOptions { max_classes: 2, ..OptimizerOptions::fast() };
    let cache = ScheduleCache::new(64);

    println!("machine: {machine}\n");
    println!(
        "{:<14} {:>6} {:>8} {:>16} {:>16} {:>8}",
        "block", "convs", "fusions", "unfused (elems)", "fused (elems)", "saved"
    );

    for stage in [1, 3, 5, 7, 9] {
        let graph = builders::mobilenet_v2_block(stage)?;
        graph.validate()?;
        let planner = GraphPlanner::new(machine.clone());
        let plan = planner.plan(&graph, |spec| {
            cache.get_or_compute(CacheKey::new(*spec, &machine, &options), || {
                MOptOptimizer::optimize_spec(spec, machine.clone(), options.clone())
            })
        })?;
        let convs: usize = plan.segments.iter().map(|s| s.ops.len()).sum();
        println!(
            "{:<14} {:>6} {:>8} {:>16.0} {:>16.0} {:>7.1}%",
            plan.graph,
            convs,
            plan.fusions_taken,
            plan.unfused_volume,
            plan.fused_volume,
            100.0 * plan.saving() / plan.unfused_volume.max(1.0),
        );
    }

    // Zoom into one block: the fused depthwise → pointwise segment, with the
    // model's credit cross-checked by the tile-granularity simulator.
    let graph = builders::mobilenet_v2_block(5)?;
    let planner = GraphPlanner::new(machine.clone());
    let plan = planner.plan(&graph, |spec| {
        cache.get_or_compute(CacheKey::new(*spec, &machine, &options), || {
            MOptOptimizer::optimize_spec(spec, machine.clone(), options.clone())
        })
    })?;
    let seg = plan.executable_segments().next().expect("a fused dw→pw segment");
    let (dw, pw) = (&seg.ops[0], &seg.ops[1]);
    println!("\nfused segment of {}: {} → {}", plan.graph, dw.name, pw.name);
    println!("  depthwise  {}", dw.shape);
    println!("  pointwise  {}", pw.shape);
    println!(
        "  intermediate tensor: {} elements (never round-trips DRAM)",
        dw.shape.output_elems()
    );
    println!(
        "  model:   unfused {:>12.0}  fused {:>12.0}  saved {:>5.1}%",
        seg.unfused_volume,
        seg.volume,
        100.0 * seg.saving() / seg.unfused_volume.max(1.0)
    );

    let sim = TileTrafficSimulator::default();
    let est = sim.fused_pair_traffic(
        &dw.shape,
        &dw.best.config,
        &pw.shape,
        &pw.best.config,
        TilingLevel::L3,
    );
    println!(
        "  tilesim: unfused {:>12.0}  fused {:>12.0}  saved {:>5.1}%",
        est.unfused_total,
        est.fused_total,
        100.0 * est.saving() / est.unfused_total.max(1.0)
    );
    assert!(est.fused_total < est.unfused_total);
    assert!(plan.fused_volume < plan.unfused_volume);
    println!("\nfused plans move strictly less data on both the model and the simulator axis.");
    Ok(())
}
