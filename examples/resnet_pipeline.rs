//! Optimize every conv2d stage of ResNet-18 (Table 1, middle column) and
//! compare MOpt's projected performance against the oneDNN-like library
//! heuristic — a scaled-down version of the per-network sweep behind
//! Figures 7 and 8.
//!
//! Run with:
//! ```text
//! cargo run --release --example resnet_pipeline
//! ```

use mopt_repro::baselines::OneDnnLike;
use mopt_repro::conv_spec::{benchmarks, MachineModel};
use mopt_repro::mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};
use mopt_repro::mopt_model::multilevel::{MultiLevelModel, ParallelSpec};

fn main() {
    let machine = MachineModel::i7_9700k();
    let threads = machine.threads;
    // Scaled-down ResNet-18 stages (structure preserved) so this finishes in
    // about a minute; pass the original shapes through `benchmarks::resnet18`
    // for the full-size run.
    let stages: Vec<_> = benchmarks::scaled_operators(28, 128)
        .into_iter()
        .filter(|op| op.suite == mopt_repro::conv_spec::BenchmarkSuite::ResNet18)
        .collect();

    println!("ResNet-18 conv2d stages on {machine}");
    println!("{:<6} {:>14} {:>14} {:>10}", "layer", "MOpt-1 GFLOPS", "library GFLOPS", "speedup");
    let mut speedups = Vec::new();
    for op in &stages {
        let shape = op.shape;
        let parallel = ParallelSpec::default_for(&shape, threads);

        let mut opts = OptimizerOptions::parallel(&machine);
        opts.max_classes = 4;
        let result = MOptOptimizer::new(shape, machine.clone(), opts).optimize();
        let mopt_cfg = &result.best().config;

        let lib = OneDnnLike::new(machine.clone());
        let lib_cfg = lib.plan(&shape).config;

        let project = |cfg: &mopt_repro::conv_spec::TileConfig| {
            MultiLevelModel::new(shape, machine.clone(), cfg.permutation.clone())
                .with_parallel(parallel)
                .predict_config(cfg)
                .projected_gflops(&machine, threads)
        };
        let mopt_gf = project(mopt_cfg);
        let lib_gf = project(&lib_cfg);
        speedups.push(mopt_gf / lib_gf.max(1e-12));
        println!(
            "{:<6} {:>14.1} {:>14.1} {:>9.2}x",
            op.name,
            mopt_gf,
            lib_gf,
            mopt_gf / lib_gf.max(1e-12)
        );
    }
    let geo = {
        let s: f64 = speedups.iter().map(|v| v.ln()).sum();
        (s / speedups.len() as f64).exp()
    };
    println!("\ngeomean MOpt-1 speedup over the library heuristic: {geo:.2}x");
    println!("(paper, full-size ResNet-18 on i7-9700K: 1.37x geomean over oneDNN)");
}
