//! Walk through the paper's analytical machinery on one operator:
//!
//! 1. show the eight pruned permutation classes (Sec. 4),
//! 2. evaluate the parametric single-level cost expression for several tile
//!    sizes (Sec. 3),
//! 3. validate the model's ranking against the memory-hierarchy simulator on
//!    a sample of configurations (Sec. 9, Figures 5/6 in miniature).
//!
//! Run with:
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use mopt_repro::autotune::SearchSpace;
use mopt_repro::conv_spec::{ConvShape, MachineModel};
use mopt_repro::mopt_core::validation::validate_operator;
use mopt_repro::mopt_model::cost::{single_level_volume, CostOptions, RealTiles};
use mopt_repro::mopt_model::prune::pruned_classes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = ConvShape::new(1, 64, 64, 3, 3, 28, 28, 1)?;
    let machine = MachineModel::i7_9700k();

    // 1. The pruned permutation classes.
    println!("The 8 pruned tile-loop permutation classes (of 5040 permutations):");
    for class in pruned_classes() {
        println!("  {class}");
    }

    // 2. The parametric cost expression for the class-1 representative.
    let perm = pruned_classes()[0].representative.clone();
    println!("\nSingle-level data volume for permutation {perm} on {shape}:");
    for tiles in [
        RealTiles::from_array([1.0, 8.0, 8.0, 3.0, 3.0, 7.0, 7.0]),
        RealTiles::from_array([1.0, 16.0, 16.0, 3.0, 3.0, 14.0, 14.0]),
        RealTiles::from_array([1.0, 64.0, 32.0, 3.0, 3.0, 28.0, 28.0]),
    ] {
        let dv = single_level_volume(&shape, &perm, &tiles, &CostOptions::default());
        println!(
            "  tiles {:?} -> In {:.3e}  Ker {:.3e}  Out {:.3e}  total {:.3e} elements",
            tiles.as_array(),
            dv.input,
            dv.kernel,
            dv.output,
            dv.total()
        );
    }

    // 3. Model-vs-simulator ranking on sampled configurations.
    let space = SearchSpace::new(&shape, &machine);
    let configs = space.sample_many(30, 42);
    let report = validate_operator("example-op", &shape, &machine, &configs, 1);
    println!("\nValidation over {} sampled configurations:", report.points.len());
    println!(
        "  rank correlation (model cost vs simulated cost): {:.2}",
        report.cost_rank_correlation()
    );
    println!("  top-1 loss: {:.1}%", report.top_k_loss(1) * 100.0);
    println!("  top-5 loss: {:.1}%", report.top_k_loss(5) * 100.0);
    println!("(the paper reports < 4.5% top-1 loss on all 32 benchmark operators)");
    Ok(())
}
