//! Whole-network planning through the serving layer: plan ResNet-18 cold,
//! then again warm from the schedule cache, and persist the cache to disk
//! the way `moptd --snapshot` does.
//!
//! Run with `cargo run --release --example network_planning`.

use mopt_repro::conv_spec::MachineModel;
use mopt_repro::mopt_core::OptimizerOptions;
use mopt_repro::mopt_service::batch::NamedLayer;
use mopt_repro::mopt_service::{load_snapshot, save_snapshot, NetworkPlanner, ScheduleCache};

fn main() {
    let machine = MachineModel::i7_9700k();
    let options = OptimizerOptions { max_classes: 2, ..OptimizerOptions::fast() };
    let cache = ScheduleCache::new(256);
    let planner = NetworkPlanner::new(&cache, machine, options);

    println!("planning ResNet-18 (cold)...");
    let cold = planner.plan_suite(mopt_repro::conv_spec::BenchmarkSuite::ResNet18);
    println!(
        "  {} layers, {} unique shapes, {} solves, {:.2}s wall ({:.2}s solver)",
        cold.stats.layers,
        cold.stats.unique_shapes,
        cold.stats.solves,
        cold.stats.wall_seconds,
        cold.stats.solve_seconds,
    );

    let warm = planner.plan_suite(mopt_repro::conv_spec::BenchmarkSuite::ResNet18);
    println!(
        "planning ResNet-18 (warm): {} cache hits, {:.4}s wall — {:.0}x faster",
        warm.stats.cache_hits,
        warm.stats.wall_seconds,
        cold.stats.wall_seconds / warm.stats.wall_seconds.max(1e-9),
    );

    println!("\nper-layer best configurations:");
    for layer in &warm.layers {
        println!(
            "  {:<5} {:<28} class {} cost {:.3e} {}",
            layer.name,
            layer.shape.to_string(),
            layer.best.class_id,
            layer.best.predicted_cost,
            if layer.from_cache { "(cached)" } else { "(solved)" },
        );
    }
    if let Some(bottleneck) = warm.bottleneck() {
        println!("\nprojected bottleneck layer: {}", bottleneck.name);
    }

    // Persist the warm cache the way `moptd --snapshot` does on shutdown.
    let mut path = std::env::temp_dir();
    path.push("mopt-example-snapshot.json");
    match save_snapshot(&cache, &path) {
        Ok(n) => println!("snapshot: {n} entries saved to {}", path.display()),
        Err(e) => println!("snapshot failed: {e}"),
    }

    // And show that a fresh cache restored from it is warm.
    let restored = ScheduleCache::new(256);
    match load_snapshot(&restored, &path) {
        Ok(n) => println!("restored {n} entries; cache len {}", restored.len()),
        Err(e) => println!("restore failed: {e}"),
    }
    std::fs::remove_file(&path).ok();

    // A layer list does not have to come from Table 1.
    let custom = vec![NamedLayer::conv(
        "custom-3x3",
        mopt_repro::conv_spec::ConvShape::new(1, 96, 48, 3, 3, 30, 30, 1).expect("valid shape"),
    )];
    let plan = planner.plan(&custom);
    println!(
        "\ncustom layer: cost {:.3e} ({})",
        plan.layers[0].best.predicted_cost,
        if plan.layers[0].from_cache { "cached" } else { "solved" },
    );
}
