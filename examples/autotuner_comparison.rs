//! Compare MOpt's analytical design-space exploration with an AutoTVM-like
//! empirical auto-tuner on one operator: how good is each approach after a
//! given measurement budget, and how long does each search take?
//!
//! Run with:
//! ```text
//! cargo run --release --example autotuner_comparison
//! ```

use mopt_repro::autotune::{ModelGuidedTuner, RandomTuner, SearchSpace, Tuner};
use mopt_repro::cache_sim::TileTrafficSimulator;
use mopt_repro::conv_spec::{ConvShape, MachineModel};
use mopt_repro::mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Yolo-9000-style stage, scaled down.
    let shape = ConvShape::new(1, 128, 64, 3, 3, 34, 34, 1)?;
    let machine = MachineModel::i7_9700k();
    let sim = TileTrafficSimulator::new(100_000);
    let threads = machine.threads;

    // The "measurement": simulated bandwidth-scaled bottleneck cost (lower is
    // better) — the stand-in for executing the candidate on hardware.
    let measure = |cfg: &mopt_repro::conv_spec::TileConfig| -> f64 {
        sim.simulate(&shape, cfg).bottleneck(&machine, threads).1
    };

    // --- MOpt: no measurements at all, pure analytical search.
    let start = std::time::Instant::now();
    let mut opts = OptimizerOptions::parallel(&machine);
    opts.max_classes = 8;
    let mopt = MOptOptimizer::new(shape, machine.clone(), opts).optimize();
    let mopt_time = start.elapsed().as_secs_f64();
    let mopt_cost = measure(&mopt.best().config);

    // --- Auto-tuners with a trial budget.
    let budget = 32;
    let space = SearchSpace::new(&shape, &machine);

    let start = std::time::Instant::now();
    let random = RandomTuner::new(1).tune(&space, &mut |c| measure(c), budget);
    let random_time = start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    let guided = ModelGuidedTuner::new(1).tune(&space, &mut |c| measure(c), budget);
    let guided_time = start.elapsed().as_secs_f64();

    println!("operator: {shape}, measurement budget for tuners: {budget} trials\n");
    println!("{:<28} {:>16} {:>12} {:>10}", "approach", "simulated cost", "search time", "trials");
    println!("{:<28} {:>16.3e} {:>11.2}s {:>10}", "MOpt (analytical)", mopt_cost, mopt_time, 0);
    println!(
        "{:<28} {:>16.3e} {:>11.2}s {:>10}",
        "random search",
        random.best().cost,
        random_time,
        budget
    );
    println!(
        "{:<28} {:>16.3e} {:>11.2}s {:>10}",
        "model-guided tuner (TVM-like)",
        guided.best().cost,
        guided_time,
        budget
    );
    println!("\nlower simulated cost is better; MOpt reaches its answer without any measurements,");
    println!(
        "which is the paper's Sec. 12 observation (9–23 s of solver time vs hours of tuning)."
    );
    Ok(())
}
