//! Quickstart: optimize one conv2d operator with MOpt, inspect the chosen
//! tiling, and check the generated configuration against the reference
//! convolution.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use mopt_repro::conv_exec::naive::conv2d_naive;
use mopt_repro::conv_exec::{Tensor4, TiledConv};
use mopt_repro::conv_spec::{ConvShape, MachineModel, TilingLevel};
use mopt_repro::mopt_core::optimizer::{MOptOptimizer, OptimizerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ResNet-18-style layer, scaled down so the example runs in seconds.
    let shape = ConvShape::new(1, 64, 32, 3, 3, 28, 28, 1)?;
    let machine = MachineModel::i7_9700k();
    println!("operator : {shape}");
    println!("machine  : {machine}");

    // 1. Run the model-driven design-space exploration (Algorithm 1).
    let optimizer = MOptOptimizer::new(shape, machine.clone(), OptimizerOptions::fast());
    let result = optimizer.optimize();
    println!("\nMOpt explored the 8 pruned permutation classes in {:.2}s", result.optimize_seconds);
    for (i, cand) in result.ranked.iter().enumerate() {
        println!(
            "  #{:<2} class {}  perm {}  predicted bottleneck {:?} cost {:.3e}",
            i + 1,
            cand.class_id,
            cand.config.permutation,
            cand.prediction.bottleneck,
            cand.predicted_cost
        );
    }

    let best = result.best();
    println!("\nbest configuration (MOpt-1):");
    for level in [TilingLevel::Register, TilingLevel::L1, TilingLevel::L2, TilingLevel::L3] {
        println!("  {:4} tile {}", level.name(), best.config.level(level));
    }

    // 2. Execute the generated configuration and verify it against the
    //    reference convolution.
    let input = Tensor4::random(shape.n, shape.c, shape.input_h(), shape.input_w(), 1);
    let kernel = Tensor4::random(shape.k, shape.c, shape.r, shape.s, 2);
    let reference = conv2d_naive(&shape, &input, &kernel);
    let conv = TiledConv::new(shape, best.config.clone(), 1)?;
    let output = conv.run(&input, &kernel);
    assert!(reference.allclose(&output, 1e-3), "tiled execution must match the reference");
    println!("\ntiled execution matches the reference convolution ✓");

    // 3. Report the model's performance projection.
    let gflops = best.prediction.projected_gflops(&machine, 1);
    println!("model-projected single-core performance: {gflops:.1} GFLOPS");
    Ok(())
}
